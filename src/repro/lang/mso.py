"""A text syntax for the paper's MSO/FO formulas over trees.

The surface maps one-to-one onto :mod:`repro.logic.syntax` (§2.3 of the
paper): lowercase names are first-order node variables, uppercase names
are set variables, ``lab_a(x)`` is the label predicate ``O_a(x)``,
``child(x, y)`` the edge relation ``E``, ``<`` the sibling order, and
``exists`` / ``forall`` quantify either kind of variable depending on
the case of the name that follows.  Connectives are ``!`` (not), ``&``
(and), ``|`` (or), ``->`` (implies, right-associative), with the usual
precedence ``!`` > ``&`` > ``|`` > ``->``; a quantifier's scope extends
as far right as possible after its ``.``.  The derived predicates the
paper uses — ``root``, ``leaf``, ``first``, ``last``,
``next_sibling`` — are built in and expand exactly like their
:mod:`repro.logic.syntax` helper counterparts.

Example — "every ``b`` node has an ``a`` ancestor"::

    forall y. lab_b(y) -> exists z. lab_a(z) & desc(z, y)

:func:`parse_mso` returns the formula; :func:`parse_mso_query`
additionally checks that exactly one node variable is free (the selected
node) and returns ``(formula, var)``; :func:`mso_query` compiles that
into an :class:`~repro.core.query.MSOQuery`.  The grammar's EBNF lives
in ``docs/QUERY_LANGUAGE.md``.
"""

from __future__ import annotations

import re
from collections.abc import Sequence

from .. import obs
from ..logic.syntax import (
    And,
    Descendant,
    Edge,
    Equal,
    Exists,
    ExistsSet,
    Forall,
    ForallSet,
    Formula,
    Implies,
    Label,
    Less,
    Member,
    Not,
    Or,
    SetVar,
    Var,
    false_formula,
    first_sibling,
    last_sibling,
    leaf,
    next_sibling,
    root,
    true_formula,
)
from .errors import QuerySyntaxError
from .tokens import EOF, TokenStream
from .xpath import _formula_size

__all__ = ["mso_query", "parse_mso", "parse_mso_query"]

_SPEC = [
    ("arrow", re.compile(r"->")),
    ("neq", re.compile(r"!=")),
    ("bang", re.compile(r"!")),
    ("amp", re.compile(r"&")),
    ("pipe", re.compile(r"\|")),
    ("lparen", re.compile(r"\(")),
    ("rparen", re.compile(r"\)")),
    ("comma", re.compile(r",")),
    ("dot", re.compile(r"\.")),
    ("lt", re.compile(r"<")),
    ("eq", re.compile(r"=")),
    ("name", re.compile(r"[A-Za-z_][A-Za-z0-9_]*")),
]

#: Names that can never be variables.
KEYWORDS = frozenset({"exists", "forall", "in", "true", "false"})

#: Built-in predicates of one node variable (beyond ``lab_σ``).
_UNARY = ("root", "leaf", "first", "last")

#: Built-in predicates of two node variables.
_BINARY = ("child", "desc", "next_sibling")


def _is_set_name(name: str) -> bool:
    """Uppercase first letter ⇒ a set variable, per the paper's convention."""
    return name[0].isupper()


class _MSOParser:
    """Recursive descent with precedence ``-> < | < & < !``; quantifier
    bodies extend maximally right after the ``.``."""

    def __init__(self, source: str) -> None:
        self.stream = TokenStream(source, _SPEC)
        #: First occurrence offset of every variable name, for locating
        #: free-variable errors after parsing.
        self.first_seen: dict[str, int] = {}

    def parse(self) -> Formula:
        stream = self.stream
        if stream.peek(EOF):
            stream.error("empty query")
        formula = self._implies()
        if not stream.peek(EOF):
            stream.error(f"unexpected {stream.current.describe()}")
        return formula

    # -- connectives, loosest first ---------------------------------------

    def _implies(self) -> Formula:
        left = self._or()
        if self.stream.take("arrow"):
            return Implies(left, self._implies())
        return left

    def _or(self) -> Formula:
        left = self._and()
        while self.stream.take("pipe"):
            left = Or(left, self._and())
        return left

    def _and(self) -> Formula:
        left = self._unary()
        while self.stream.take("amp"):
            left = And(left, self._unary())
        return left

    def _unary(self) -> Formula:
        stream = self.stream
        if stream.take("bang"):
            stream.enter()
            inner = self._unary()
            stream.leave()
            return Not(inner)
        if stream.peek("name", "exists") or stream.peek("name", "forall"):
            return self._quantifier()
        if stream.peek("lparen"):
            opening = stream.advance()
            stream.enter()
            inner = self._implies()
            if not stream.peek("rparen"):
                stream.error(
                    f"unbalanced '(': expected ')', found {stream.current.describe()}",
                    offset=opening.offset if stream.peek(EOF) else None,
                )
            stream.advance()
            stream.leave()
            return inner
        return self._atom()

    def _quantifier(self) -> Formula:
        stream = self.stream
        word = stream.advance()  # "exists" or "forall"
        name = stream.expect("name", "a variable name")
        if name.text in KEYWORDS:
            stream.error(
                f"{name.text!r} is a keyword, not a variable name",
                offset=name.offset,
            )
        stream.expect("dot", "'.' after the quantified variable")
        stream.enter()
        body = self._implies()  # maximal right scope
        stream.leave()
        if _is_set_name(name.text):
            ctor = ExistsSet if word.text == "exists" else ForallSet
            return ctor(SetVar(name.text), body)
        ctor = Exists if word.text == "exists" else Forall
        return ctor(Var(name.text), body)

    # -- atoms -------------------------------------------------------------

    def _atom(self) -> Formula:
        stream = self.stream
        name = stream.expect("name", "an atom")
        if name.text == "true":
            return true_formula()
        if name.text == "false":
            return false_formula()
        if stream.peek("lparen"):
            return self._predicate(name)
        return self._relation(name)

    def _predicate(self, name) -> Formula:
        stream = self.stream
        stream.advance()  # the '('
        if name.text.startswith("lab_"):
            label = name.text[len("lab_") :]
            if not label:
                stream.error("'lab_' needs a label, e.g. lab_a(x)", offset=name.offset)
            arg = self._node_var()
            stream.expect("rparen", "')'")
            return Label(arg, label)
        if name.text in _UNARY:
            arg = self._node_var()
            stream.expect("rparen", "')'")
            builder = {
                "root": root,
                "leaf": leaf,
                "first": first_sibling,
                "last": last_sibling,
            }[name.text]
            return builder(arg)
        if name.text in _BINARY:
            left = self._node_var()
            stream.expect("comma", "','")
            right = self._node_var()
            stream.expect("rparen", "')'")
            if name.text == "child":
                return Edge(left, right)
            if name.text == "desc":
                return Descendant(left, right)
            return next_sibling(left, right)
        stream.error(
            f"unknown predicate {name.text!r} (predicates: lab_<label>, "
            f"{', '.join(_UNARY + _BINARY)})",
            offset=name.offset,
        )

    def _relation(self, name) -> Formula:
        """``x = y``, ``x != y``, ``x < y``, or ``x in X``."""
        stream = self.stream
        left = self._as_node_var(name)
        if stream.take("eq"):
            return Equal(left, self._node_var())
        if stream.take("neq"):
            return Not(Equal(left, self._node_var()))
        if stream.take("lt"):
            return Less(left, self._node_var())
        if stream.take("name", "in"):
            member = stream.expect("name", "a set variable")
            if not _is_set_name(member.text):
                stream.error(
                    f"{member.text!r} is not a set variable (set variables "
                    "start with an uppercase letter)",
                    offset=member.offset,
                )
            self.first_seen.setdefault(member.text, member.offset)
            return Member(left, SetVar(member.text))
        stream.error(
            f"expected a relation ('=', '!=', '<', 'in') after {name.text!r}"
        )

    def _node_var(self) -> Var:
        token = self.stream.expect("name", "a node variable")
        return self._as_node_var(token)

    def _as_node_var(self, token) -> Var:
        if token.text in KEYWORDS:
            self.stream.error(
                f"{token.text!r} is a keyword, not a variable name",
                offset=token.offset,
            )
        if _is_set_name(token.text):
            self.stream.error(
                f"{token.text!r} is a set variable; a node variable "
                "(lowercase) is required here",
                offset=token.offset,
            )
        self.first_seen.setdefault(token.text, token.offset)
        return Var(token.text)


def parse_mso(source: str) -> Formula:
    """Parse an MSO surface-syntax string into a :class:`Formula`.

    Raises :class:`~repro.lang.errors.QuerySyntaxError` with the exact
    character offset on malformed input.
    """
    formula = _MSOParser(source).parse()
    obs.SINK.incr("lang.mso_parses")
    return formula


def parse_mso_query(source: str) -> tuple[Formula, Var]:
    """Parse a *unary query*: a formula with exactly one free node variable.

    Returns ``(formula, var)`` where ``var`` is the selected-node
    variable.  Sentences (no free variables), formulas with several free
    node variables, and formulas with free set variables all raise a
    located :class:`~repro.lang.errors.QuerySyntaxError` — a unary query
    φ(x) is what the paper's query automata compute (§5).
    """
    parser = _MSOParser(source)
    formula = parser.parse()
    obs.SINK.incr("lang.mso_parses")
    free_sets = formula.free_set_vars()
    if free_sets:
        worst = min(free_sets, key=lambda s: parser.first_seen.get(s.name, 0))
        raise QuerySyntaxError(
            f"free set variable {worst.name!r}: quantify it with "
            "'exists {0}.' or 'forall {0}.'".format(worst.name),
            source,
            parser.first_seen.get(worst.name, 0),
        )
    free = formula.free_vars()
    if len(free) != 1:
        if not free:
            raise QuerySyntaxError(
                "a query needs exactly one free node variable (the selected "
                "node); this formula is a sentence with none",
                source,
                0,
            )
        names = sorted(v.name for v in free)
        second = names[1]
        raise QuerySyntaxError(
            f"a query needs exactly one free node variable, found "
            f"{len(names)}: {', '.join(names)}",
            source,
            parser.first_seen.get(second, 0),
        )
    (var,) = free
    sink = obs.SINK
    if sink.enabled:
        sink.incr("lang.lowered_nodes", _formula_size(formula))
    return formula, var


def mso_query(source: str, alphabet: Sequence[str], engine: str = "automaton"):
    """Compile an MSO query string into an :class:`~repro.core.query.MSOQuery`.

    >>> from repro.trees.tree import Tree
    >>> q = mso_query("lab_b(x) & !exists y. child(x, y)", ["a", "b"])
    >>> sorted(q.evaluate(Tree.parse("a(b(a), b)")))
    [(1,)]
    """
    from ..core.query import MSOQuery

    formula, var = parse_mso_query(source)
    return MSOQuery(formula, var, tuple(alphabet), engine=engine)
