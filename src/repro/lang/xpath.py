"""An XPath fragment compiled to the paper's MSO queries.

The practical core of XPath 1.0 over the label-only tree abstraction of
this library (no attributes, no text functions, no positions): location
paths built from seven axes — ``child``, ``descendant``, ``self``,
``parent``, ``ancestor``, ``following-sibling``, ``preceding-sibling`` —
with the abbreviated forms ``/`` (child), ``//`` (descendant), ``.``
(self), ``..`` (parent); label and ``*`` node tests; and bracketed
predicates combining relative paths (existence tests) with ``and`` /
``or`` / ``not(...)``.

The pipeline is tokenize → parse (:func:`parse_xpath`, producing the
small :class:`Step` AST) → lower (:func:`lower_xpath`, producing a
:mod:`repro.logic.syntax` formula φ(x) with ``x`` the selected node) →
compile (:func:`xpath_query`, through the Theorem 5.4 machinery of
:func:`repro.logic.compile_trees.compile_tree_query` with its
minimization and compile cache).  The axis↔logic correspondence follows
the FO/MSO translations surveyed by Libkin (*Logics for Unranked Trees*,
§XPath): ``child`` is the edge relation ``E``, ``descendant`` the
transitive closure (the constant-size :class:`Descendant` atom here),
and the sibling axes are the sibling order ``<``.  The grammar, the full
lowering table, and the supported-vs-unsupported feature matrix live in
``docs/QUERY_LANGUAGE.md``.
"""

from __future__ import annotations

import re
from collections.abc import Sequence
from dataclasses import dataclass, field

from .. import obs
from ..logic.syntax import (
    And,
    Descendant,
    Edge,
    Equal,
    Exists,
    Formula,
    Label,
    Less,
    Not,
    Or,
    Var,
    false_formula,
    fresh_var,
    root,
    true_formula,
)
from .errors import QuerySyntaxError
from .tokens import EOF, TokenStream

__all__ = [
    "AXES",
    "LocationPath",
    "PredAnd",
    "PredNot",
    "PredOr",
    "PredPath",
    "Step",
    "lower_xpath",
    "parse_xpath",
    "xpath_query",
]

#: The supported axes, in the order error messages list them.
AXES = (
    "child",
    "descendant",
    "self",
    "parent",
    "ancestor",
    "following-sibling",
    "preceding-sibling",
)

_SPEC = [
    ("dslash", re.compile(r"//")),
    ("slash", re.compile(r"/")),
    ("axis", re.compile(r"::")),
    ("lbracket", re.compile(r"\[")),
    ("rbracket", re.compile(r"\]")),
    ("lparen", re.compile(r"\(")),
    ("rparen", re.compile(r"\)")),
    ("dotdot", re.compile(r"\.\.")),
    ("dot", re.compile(r"\.")),
    ("star", re.compile(r"\*")),
    ("name", re.compile(r"[A-Za-z_#][A-Za-z0-9_#-]*")),
]


# ----------------------------------------------------------------------
# The parsed AST
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Step:
    """One location step: an axis, a node test, and its predicates."""

    axis: str
    test: str  # a label, or "*" for any label
    predicates: tuple = ()
    offset: int = 0


@dataclass(frozen=True)
class LocationPath:
    """A sequence of steps; top-level query paths are absolute (rooted)."""

    steps: tuple[Step, ...]
    absolute: bool = True


@dataclass(frozen=True)
class PredPath:
    """A relative path used as an existence predicate."""

    path: LocationPath


@dataclass(frozen=True)
class PredNot:
    """``not(expr)``."""

    inner: object


@dataclass(frozen=True)
class PredAnd:
    """``left and right``."""

    left: object
    right: object


@dataclass(frozen=True)
class PredOr:
    """``left or right``."""

    left: object
    right: object


# ----------------------------------------------------------------------
# Parsing
# ----------------------------------------------------------------------


class _XPathParser:
    """Recursive descent over the grammar in ``docs/QUERY_LANGUAGE.md``."""

    def __init__(self, source: str) -> None:
        self.stream = TokenStream(source, _SPEC)

    def parse(self) -> LocationPath:
        stream = self.stream
        if stream.peek(EOF):
            stream.error("empty query")
        if not (stream.peek("slash") or stream.peek("dslash")):
            stream.error("query paths must start with '/' or '//'")
        if stream.peek("slash") and stream.tokens[stream.index + 1].kind == EOF:
            stream.advance()
            return LocationPath(steps=())  # "/" alone selects the root
        steps = self._steps(absolute=True)
        if not stream.peek(EOF):
            stream.error(f"unexpected {stream.current.describe()}")
        return LocationPath(steps=tuple(steps))

    def _steps(self, absolute: bool) -> list[Step]:
        """``("/" | "//") step`` repetitions; the leading separator of an
        absolute path has already been checked to exist by the caller."""
        stream = self.stream
        steps = [self._separated_step()]
        while stream.peek("slash") or stream.peek("dslash"):
            steps.append(self._separated_step())
        return steps

    def _separated_step(self) -> Step:
        stream = self.stream
        if stream.take("dslash"):
            return self._step(default_axis="descendant", after_dslash=True)
        stream.expect("slash", "'/'")
        return self._step(default_axis="child", after_dslash=False)

    def _step(self, default_axis: str, after_dslash: bool) -> Step:
        stream = self.stream
        offset = stream.current.offset
        if stream.take("dot"):
            axis, test = "self", "*"
        elif stream.take("dotdot"):
            axis, test = "parent", "*"
        elif stream.peek("name") and stream.tokens[stream.index + 1].kind == "axis":
            name = stream.advance()
            if name.text not in AXES:
                stream.error(
                    f"unknown axis {name.text!r} (axes: {', '.join(AXES)})",
                    offset=name.offset,
                )
            if after_dslash:
                stream.error(
                    "an explicit axis after '//' is unsupported; write "
                    f"'/descendant::*/{name.text}::...' instead",
                    offset=name.offset,
                )
            stream.advance()  # the '::'
            axis = name.text
            test = self._node_test()
        elif stream.peek("name") or stream.peek("star"):
            axis = default_axis
            test = self._node_test()
        else:
            stream.error(f"expected a step, found {stream.current.describe()}")
        predicates = []
        while stream.peek("lbracket"):
            predicates.append(self._predicate())
        return Step(axis=axis, test=test, predicates=tuple(predicates), offset=offset)

    def _node_test(self) -> str:
        stream = self.stream
        if stream.take("star"):
            return "*"
        return stream.expect("name", "a label or '*'").text

    def _predicate(self):
        stream = self.stream
        stream.enter()
        opening = stream.expect("lbracket", "'['")
        if stream.peek("rbracket"):
            stream.error("empty predicate")
        expr = self._or_expr()
        if not stream.peek("rbracket"):
            stream.error(
                f"unbalanced '[': expected ']', found {stream.current.describe()}",
                offset=opening.offset if stream.peek(EOF) else None,
            )
        stream.advance()
        stream.leave()
        return expr

    def _or_expr(self):
        left = self._and_expr()
        while self.stream.take("name", "or"):
            left = PredOr(left, self._and_expr())
        return left

    def _and_expr(self):
        left = self._not_expr()
        while self.stream.take("name", "and"):
            left = PredAnd(left, self._not_expr())
        return left

    def _not_expr(self):
        stream = self.stream
        # "not" is only the boolean function when followed by '(' — as a
        # bare name it is an ordinary label test ("labels may collide
        # with keywords").
        if stream.peek("name", "not") and stream.tokens[stream.index + 1].kind == "lparen":
            stream.advance()
            opening = stream.expect("lparen", "'('")
            stream.enter()
            inner = self._or_expr()
            if not stream.peek("rparen"):
                stream.error(
                    f"unbalanced '(': expected ')', found {stream.current.describe()}",
                    offset=opening.offset if stream.peek(EOF) else None,
                )
            stream.advance()
            stream.leave()
            return PredNot(inner)
        if stream.peek("lparen"):
            opening = stream.advance()
            stream.enter()
            inner = self._or_expr()
            if not stream.peek("rparen"):
                stream.error(
                    f"unbalanced '(': expected ')', found {stream.current.describe()}",
                    offset=opening.offset if stream.peek(EOF) else None,
                )
            stream.advance()
            stream.leave()
            return inner
        return PredPath(self._relative_path())

    def _relative_path(self) -> LocationPath:
        stream = self.stream
        if stream.peek("slash") or stream.peek("dslash"):
            stream.error("absolute paths are not allowed inside predicates")
        steps = [self._step(default_axis="child", after_dslash=False)]
        while stream.peek("slash") or stream.peek("dslash"):
            steps.append(self._separated_step())
        return LocationPath(steps=tuple(steps), absolute=False)


def parse_xpath(source: str) -> LocationPath:
    """Parse a query string of the XPath fragment into its step AST.

    Raises :class:`~repro.lang.errors.QuerySyntaxError` (with the exact
    character offset) on any malformed input, including empty or
    whitespace-only queries.
    """
    path = _XPathParser(source).parse()
    obs.SINK.incr("lang.xpath_parses")
    return path


# ----------------------------------------------------------------------
# Lowering to logic.syntax
# ----------------------------------------------------------------------


def _label_test(var: Var, test: str, alphabet: Sequence[str]) -> Formula | None:
    """The node-test conjunct, or None for ``*`` (no constraint)."""
    if test == "*":
        return None
    return Label(var, test)


def _conjoin(*parts: Formula | None) -> Formula | None:
    """And-fold, skipping absent conjuncts."""
    out: Formula | None = None
    for part in parts:
        if part is None:
            continue
        out = part if out is None else And(out, part)
    return out


def _link(axis: str, context: Var, node: Var) -> Formula:
    """The axis relation between a context node and the step node."""
    if axis == "child":
        return Edge(context, node)
    if axis == "descendant":
        return Descendant(context, node)
    if axis == "parent":
        return Edge(node, context)
    if axis == "ancestor":
        return Descendant(node, context)
    if axis == "following-sibling":
        return Less(context, node)
    if axis == "preceding-sibling":
        return Less(node, context)
    raise AssertionError(f"unlowerable axis {axis!r}")


def _normalize(steps: Sequence[Step]):
    """Fold ``self``-axis steps into constraints on their neighbor node.

    Returns ``(context_constraints, chain)`` where each constraint is a
    ``(test, predicates)`` pair on the *context* node (produced by
    leading ``self`` steps) and ``chain`` is a list of
    ``(axis, [constraints])`` entries with no ``self`` axes left.
    """
    context_constraints: list[tuple[str, tuple]] = []
    chain: list[tuple[str, list[tuple[str, tuple]]]] = []
    for step in steps:
        constraint = (step.test, step.predicates)
        if step.axis == "self":
            if chain:
                chain[-1][1].append(constraint)
            else:
                context_constraints.append(constraint)
        else:
            chain.append((step.axis, [constraint]))
    return context_constraints, chain


def _constraints_formula(
    var: Var, constraints: Sequence[tuple[str, tuple]], alphabet: Sequence[str]
) -> Formula | None:
    parts: list[Formula | None] = []
    for test, predicates in constraints:
        parts.append(_label_test(var, test, alphabet))
        for predicate in predicates:
            parts.append(_predicate_formula(var, predicate, alphabet))
    return _conjoin(*parts)


def _predicate_formula(
    var: Var, predicate, alphabet: Sequence[str]
) -> Formula | None:
    if isinstance(predicate, PredOr):
        left = _predicate_formula(var, predicate.left, alphabet)
        right = _predicate_formula(var, predicate.right, alphabet)
        if left is None or right is None:
            return None  # a vacuously true disjunct absorbs the whole Or
        return Or(left, right)
    if isinstance(predicate, PredAnd):
        return _conjoin(
            _predicate_formula(var, predicate.left, alphabet),
            _predicate_formula(var, predicate.right, alphabet),
        )
    if isinstance(predicate, PredNot):
        inner = _predicate_formula(var, predicate.inner, alphabet)
        return Not(true_formula() if inner is None else inner)
    if isinstance(predicate, PredPath):
        context_constraints, chain = _normalize(predicate.path.steps)
        return _conjoin(
            _constraints_formula(var, context_constraints, alphabet),
            _chain_formula(chain, var, None, alphabet),
        )
    raise AssertionError(f"unlowerable predicate {predicate!r}")


def _chain_formula(
    chain, context: Var, select: Var | None, alphabet: Sequence[str]
) -> Formula | None:
    """Formula for following ``chain`` from ``context``.

    With ``select`` given, the final node is bound to it (left free);
    otherwise the whole chain is existentially closed (predicate use).
    Built back-to-front so every intermediate node gets one ∃.
    """
    if not chain:
        return None
    formula: Formula | None = None
    current = select if select is not None else fresh_var("n")
    for index in range(len(chain) - 1, -1, -1):
        axis, constraints = chain[index]
        parent = context if index == 0 else fresh_var("s")
        formula = _conjoin(
            _link(axis, parent, current),
            _constraints_formula(current, constraints, alphabet),
            formula,
        )
        if current is not select:
            formula = Exists(current, formula)
        current = parent
    return formula


def _formula_size(formula: Formula) -> int:
    """Node count of a lowered formula (for the ``lang.lowered_nodes`` counter)."""
    count = 1
    for name in ("inner", "left", "right"):
        child = getattr(formula, name, None)
        if isinstance(child, Formula):
            count += _formula_size(child)
    return count


def lower_xpath(
    path: LocationPath, alphabet: Sequence[str]
) -> tuple[Formula, Var]:
    """Lower a parsed path to an MSO formula φ(x); returns ``(φ, x)``.

    ``x`` is free in φ and ranges over the selected nodes; every other
    step node is existentially quantified.  ``descendant`` lowers to the
    constant-size :class:`~repro.logic.syntax.Descendant` atom rather
    than its MSO set-quantifier definition, so ``//`` stays cheap to
    compile.

    Absolute paths follow XPath's document-root semantics, with the
    tree root standing in for the document node: ``/`` and a leading
    ``.`` denote the root element, ``/a`` selects the root element when
    it is labeled ``a``, and ``//a`` selects *every* node labeled ``a``
    (the root included).  A first step on the ``parent``, ``ancestor``,
    or sibling axes selects nothing — the document root has neither.
    """
    x = Var("x")
    context_constraints, chain = _normalize(path.steps)
    if context_constraints or not chain:
        # "/", or a path led by self steps: the context is the root
        # element, and the chain walks down from it.
        root_var = x if not chain else fresh_var("r")
        formula = _conjoin(
            root(root_var),
            _constraints_formula(root_var, context_constraints, alphabet),
            _chain_formula(chain, root_var, x, alphabet),
        )
        assert formula is not None  # root() is always a conjunct
        if root_var is not x:
            formula = Exists(root_var, formula)
    else:
        # The first step is taken from the virtual document root:
        # child:: pins its node to the root element, descendant:: (the
        # usual "//" lead) reaches every node, and the remaining axes
        # have nowhere to go.
        first_axis, first_constraints = chain[0]
        rest = chain[1:]
        if first_axis in ("child", "descendant"):
            node = x if not rest else fresh_var("r")
            anchor = root(node) if first_axis == "child" else None
            formula = _conjoin(
                anchor,
                _constraints_formula(node, first_constraints, alphabet),
                _chain_formula(rest, node, x, alphabet),
            )
            if formula is None:  # "//*": every node
                formula = Equal(x, x)
            elif node is not x:
                formula = Exists(node, formula)
        else:
            formula = And(false_formula(), Equal(x, x))
    sink = obs.SINK
    if sink.enabled:
        sink.incr("lang.lowered_nodes", _formula_size(formula))
    return formula, x


def xpath_query(source: str, alphabet: Sequence[str], engine: str = "automaton"):
    """Compile an XPath query string into an :class:`~repro.core.query.MSOQuery`.

    The formula compiles through
    :func:`repro.logic.compile_trees.compile_tree_query` on first
    evaluation — per-connective minimization, the hash-consed compile
    cache, and ``engine={naive,table,numpy}`` selection at evaluation
    time all apply exactly as for hand-assembled formulas.

    >>> from repro.trees.tree import Tree
    >>> q = xpath_query("//b[not(c)]", ["a", "b", "c"])
    >>> sorted(q.evaluate(Tree.parse("a(b(c), a(b), b)")))
    [(1, 0), (2,)]
    """
    from ..core.query import MSOQuery

    formula, var = lower_xpath(parse_xpath(source), alphabet)
    return MSOQuery(formula, var, tuple(alphabet), engine=engine)
