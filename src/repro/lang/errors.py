"""Source-located syntax errors for the query-string frontend.

Every failure in the frontend — an unexpected character while
tokenizing, a malformed construct while parsing, or an invalid formula
discovered while lowering (wrong arity, a set variable where a node
variable is required, the wrong number of free variables) — raises one
exception type, :class:`QuerySyntaxError`, carrying the offending query
string and the exact character offset of the problem.  The rendered
message shows the source line with a caret under the offset::

    unknown axis 'descendent' at offset 2
      //descendent::a
        ^

Offsets are 0-based character offsets into the query string as handed
to the parser (for pure-ASCII queries they coincide with byte offsets);
``line`` and ``column`` are derived 1-based coordinates for multi-line
MSO formulas.
"""

from __future__ import annotations

from .. import obs


class QuerySyntaxError(ValueError):
    """A query string failed to tokenize, parse, or lower.

    Attributes: ``message`` (the bare description), ``source`` (the full
    query string), ``offset`` (0-based character offset of the problem),
    and the derived 1-based ``line`` / ``column``.
    """

    def __init__(self, message: str, source: str = "", offset: int = 0) -> None:
        self.message = message
        self.source = source
        self.offset = max(0, min(offset, len(source)))
        obs.SINK.incr("lang.syntax_errors")
        super().__init__(self._render())

    @property
    def line(self) -> int:
        """1-based line number of the offset within the source."""
        return self.source.count("\n", 0, self.offset) + 1

    @property
    def column(self) -> int:
        """1-based column number of the offset within its line."""
        start = self.source.rfind("\n", 0, self.offset) + 1
        return self.offset - start + 1

    def _render(self) -> str:
        if not self.source:
            return self.message
        head = f"{self.message} at offset {self.offset}"
        start = self.source.rfind("\n", 0, self.offset) + 1
        end = self.source.find("\n", start)
        line = self.source[start:] if end < 0 else self.source[start:end]
        caret = " " * (self.offset - start) + "^"
        return f"{head}\n  {line}\n  {caret}"
