"""A table-driven tokenizer shared by the XPath and MSO parsers.

Each surface syntax supplies a *spec* — an ordered list of
``(kind, compiled regex)`` pairs — and :func:`tokenize` produces the
token stream, skipping whitespace, raising a located
:class:`~repro.lang.errors.QuerySyntaxError` on any character no rule
matches, and appending a final ``EOF`` token so parsers never index past
the end.  :class:`TokenStream` adds the cursor discipline the
recursive-descent parsers share: ``peek``/``advance``/``expect`` and a
bounded nesting counter (:attr:`TokenStream.MAX_DEPTH`) so maliciously
nested queries raise a clean syntax error instead of blowing the Python
recursion limit.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from .. import obs
from .errors import QuerySyntaxError

#: Token kind marking the end of the query string.
EOF = "eof"

_WHITESPACE = re.compile(r"\s+")


@dataclass(frozen=True)
class Token:
    """One lexeme: its kind, verbatim text, and character offset."""

    kind: str
    text: str
    offset: int

    def describe(self) -> str:
        """Human rendering for error messages: ``'text'`` or end of query."""
        return "end of query" if self.kind == EOF else f"{self.text!r}"


def tokenize(source: str, spec: list[tuple[str, re.Pattern]]) -> list[Token]:
    """The token list of ``source`` under ``spec`` (ordered, first match wins).

    Whitespace separates tokens and is never emitted; a character no rule
    matches raises a located :class:`QuerySyntaxError`.  The returned
    list always ends with an ``EOF`` token at ``len(source)``.
    """
    tokens: list[Token] = []
    position = 0
    length = len(source)
    while position < length:
        space = _WHITESPACE.match(source, position)
        if space:
            position = space.end()
            continue
        for kind, pattern in spec:
            match = pattern.match(source, position)
            if match:
                tokens.append(Token(kind, match.group(), position))
                position = match.end()
                break
        else:
            raise QuerySyntaxError(
                f"unexpected character {source[position]!r}", source, position
            )
    tokens.append(Token(EOF, "", length))
    sink = obs.SINK
    if sink.enabled:
        sink.incr("lang.tokens", len(tokens))
    return tokens


class TokenStream:
    """Cursor over a token list, with the shared parser helpers."""

    #: Nesting levels (brackets, parentheses, quantifier bodies) beyond
    #: which parsing aborts with a syntax error rather than recursing on.
    MAX_DEPTH = 100

    def __init__(self, source: str, spec: list[tuple[str, re.Pattern]]) -> None:
        self.source = source
        self.tokens = tokenize(source, spec)
        self.index = 0
        self.depth = 0

    # -- cursor -----------------------------------------------------------

    @property
    def current(self) -> Token:
        """The token under the cursor (``EOF`` at the end, never past it)."""
        return self.tokens[self.index]

    def peek(self, kind: str, text: str | None = None) -> bool:
        """Does the current token have this kind (and text, if given)?"""
        token = self.current
        return token.kind == kind and (text is None or token.text == text)

    def advance(self) -> Token:
        """Consume and return the current token."""
        token = self.current
        if token.kind != EOF:
            self.index += 1
        return token

    def take(self, kind: str, text: str | None = None) -> Token | None:
        """Consume and return the current token iff it matches, else None."""
        if self.peek(kind, text):
            return self.advance()
        return None

    def expect(self, kind: str, what: str) -> Token:
        """Consume a token of ``kind`` or fail with ``expected {what}``."""
        if not self.peek(kind):
            self.error(f"expected {what}, found {self.current.describe()}")
        return self.advance()

    def error(self, message: str, offset: int | None = None) -> None:
        """Raise a located syntax error (default: at the current token)."""
        at = self.current.offset if offset is None else offset
        raise QuerySyntaxError(message, self.source, at)

    # -- nesting guard ----------------------------------------------------

    def enter(self) -> None:
        """Count one nesting level; abort past :attr:`MAX_DEPTH`."""
        self.depth += 1
        if self.depth > self.MAX_DEPTH:
            self.error(
                f"query nesting exceeds the depth limit ({self.MAX_DEPTH})"
            )

    def leave(self) -> None:
        """Close one nesting level."""
        self.depth -= 1
