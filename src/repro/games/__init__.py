"""Ehrenfeucht–Fraïssé MSO games (Section 2.1)."""

from .ef import (
    distinguishing_depth,
    duplicator_wins,
    mso_equivalent_strings,
    mso_equivalent_trees,
    mso_equivalent_trees_pointed,
)

__all__ = [
    "distinguishing_depth",
    "duplicator_wins",
    "mso_equivalent_strings",
    "mso_equivalent_trees",
    "mso_equivalent_trees_pointed",
]
