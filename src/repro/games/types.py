"""MSO equivalence types (``≡^MSO_k``) over small structures.

The paper's proofs run on *types*: the finitely many classes of
``≡^MSO_k``, composed via Propositions 2.4/2.7 and computed by automata
(Lemma 3.8, Lemma 2.10).  Enumerating the classes exactly is infeasible
in general, but over a bounded universe the Ehrenfeucht game of
:mod:`repro.games.ef` decides the equivalence — enough to *exhibit* the
type structure and to test the composition lemmas on concrete
representatives, which is what this module provides.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from ..trees.tree import Tree
from .ef import mso_equivalent_strings, mso_equivalent_trees


def partition_strings(
    words: Iterable[str | Sequence[str]], rounds: int
) -> list[list]:
    """Group the given words into ``≡^MSO_k`` classes (k = rounds).

    Quadratic in the number of words; each comparison is a full game
    search — bounded-universe type computation, the ``Φ_k`` of §2.1 made
    concrete.
    """
    classes: list[list] = []
    for word in words:
        for bucket in classes:
            if mso_equivalent_strings(word, bucket[0], rounds):
                bucket.append(word)
                break
        else:
            classes.append([word])
    return classes


def partition_trees(trees: Iterable[Tree], rounds: int) -> list[list[Tree]]:
    """Group trees into ``≡^MSO_k`` classes."""
    classes: list[list[Tree]] = []
    for tree in trees:
        for bucket in classes:
            if mso_equivalent_trees(tree, bucket[0], rounds):
                bucket.append(tree)
                break
        else:
            classes.append([tree])
    return classes


def type_of(word, words: Iterable, rounds: int) -> int:
    """The index of ``word``'s class within the partition of ``words``."""
    for index, bucket in enumerate(partition_strings(list(words), rounds)):
        if any(
            mso_equivalent_strings(word, member, rounds) for member in bucket
        ):
            return index
    raise ValueError("word not equivalent to any class representative")


def composition_respects_types(
    left_words: Sequence, right_words: Sequence, rounds: int
) -> bool:
    """Check Proposition 2.4 on a universe: ``w ≡ₖ w'`` and ``v ≡ₖ v'``
    imply ``wv ≡ₖ w'v'``.

    Returns True iff no counterexample exists among the given words —
    the composition lemma as a decidable property of the finite sample.
    """
    for w in left_words:
        for w2 in left_words:
            if not mso_equivalent_strings(w, w2, rounds):
                continue
            for v in right_words:
                for v2 in right_words:
                    if not mso_equivalent_strings(v, v2, rounds):
                        continue
                    if not mso_equivalent_strings(
                        list(w) + list(v), list(w2) + list(v2), rounds
                    ):
                        return False
    return True
