"""Ehrenfeucht–Fraïssé games for MSO (Section 2.1), executable.

The ``k``-round MSO game ``G^MSO_k(A, ā; B, b̄)`` lets the spoiler make
point moves (pick an element on either side) or set moves (pick a subset);
the duplicator answers on the other structure; she wins when the chosen
tuples/sets form a partial isomorphism.  Proposition 2.3: the duplicator
has a winning strategy iff ``(A, ā) ≡^MSO_k (B, b̄)``.

:func:`duplicator_wins` decides the game by exhaustive minimax over the
(finite) structures — doubly exponential in ``k``, usable for the small
instances that the composition lemmas (Propositions 2.4, 2.7, 3.7, 5.3,
5.5) are property-tested on.  :func:`mso_equivalent` cross-checks against
direct quantifier-depth-bounded formula enumeration semantics: structures
are ``≡^MSO_k`` iff no depth-``k`` sentence distinguishes them, which is
what the game decides.
"""

from __future__ import annotations

from itertools import chain, combinations

from ..logic.semantics import Structure
from ..trees.tree import Tree

Element = object


def _subsets(domain: tuple) -> list[frozenset]:
    return [
        frozenset(combo)
        for combo in chain.from_iterable(
            combinations(domain, size) for size in range(len(domain) + 1)
        )
    ]


def _partial_isomorphism(
    left: Structure,
    right: Structure,
    left_points: tuple,
    right_points: tuple,
    left_sets: tuple,
    right_sets: tuple,
) -> bool:
    """Do the chosen points define a partial isomorphism (with set and
    label predicates respected)?"""
    if len(left_points) != len(right_points):
        return False
    # Injectivity / functionality.
    for i, (a, b) in enumerate(zip(left_points, right_points)):
        for j in range(i + 1, len(left_points)):
            if (left_points[j] == a) != (right_points[j] == b):
                return False
        # Labels.
        if left.labels[a] != right.labels[b]:
            return False
        # Set memberships.
        for left_set, right_set in zip(left_sets, right_sets):
            if (a in left_set) != (b in right_set):
                return False
    # Binary relations.
    for a1, b1 in zip(left_points, right_points):
        for a2, b2 in zip(left_points, right_points):
            if ((a1, a2) in left.edges) != ((b1, b2) in right.edges):
                return False
            if ((a1, a2) in left.less) != ((b1, b2) in right.less):
                return False
    return True


def duplicator_wins(
    left: Structure,
    right: Structure,
    rounds: int,
    left_points: tuple = (),
    right_points: tuple = (),
    left_sets: tuple = (),
    right_sets: tuple = (),
) -> bool:
    """Decide the ``k``-round MSO game by minimax.

    The duplicator wins iff the current position is a partial isomorphism
    and she can answer every remaining spoiler move.
    """
    if not _partial_isomorphism(
        left, right, left_points, right_points, left_sets, right_sets
    ):
        return False
    if rounds == 0:
        return True

    left_domain = tuple(left.domain)
    right_domain = tuple(right.domain)

    # Spoiler point move on the left.
    for a in left_domain:
        if not any(
            duplicator_wins(
                left,
                right,
                rounds - 1,
                left_points + (a,),
                right_points + (b,),
                left_sets,
                right_sets,
            )
            for b in right_domain
        ):
            return False
    # Spoiler point move on the right.
    for b in right_domain:
        if not any(
            duplicator_wins(
                left,
                right,
                rounds - 1,
                left_points + (a,),
                right_points + (b,),
                left_sets,
                right_sets,
            )
            for a in left_domain
        ):
            return False
    # Spoiler set move on the left.
    for picked in _subsets(left_domain):
        if not any(
            duplicator_wins(
                left,
                right,
                rounds - 1,
                left_points,
                right_points,
                left_sets + (picked,),
                right_sets + (answer,),
            )
            for answer in _subsets(right_domain)
        ):
            return False
    # Spoiler set move on the right.
    for picked in _subsets(right_domain):
        if not any(
            duplicator_wins(
                left,
                right,
                rounds - 1,
                left_points,
                right_points,
                left_sets + (answer,),
                right_sets + (picked,),
            )
            for answer in _subsets(left_domain)
        ):
            return False
    return True


def mso_equivalent_strings(u: str | list, v: str | list, rounds: int) -> bool:
    """``u ≡^MSO_k v`` for strings, via the game (Proposition 2.3)."""
    return duplicator_wins(
        Structure.from_string(list(u)), Structure.from_string(list(v)), rounds
    )


def mso_equivalent_trees(s: Tree, t: Tree, rounds: int) -> bool:
    """``s ≡^MSO_k t`` for trees, via the game."""
    return duplicator_wins(Structure.from_tree(s), Structure.from_tree(t), rounds)


def mso_equivalent_trees_pointed(
    s: Tree, s_node, t: Tree, t_node, rounds: int
) -> bool:
    """``(s, v) ≡^MSO_k (t, w)``: trees with one distinguished node.

    Distinguished constants are modeled as pre-chosen point moves.
    """
    return duplicator_wins(
        Structure.from_tree(s),
        Structure.from_tree(t),
        rounds,
        left_points=(s_node,),
        right_points=(t_node,),
    )


def distinguishing_depth(u, v, max_rounds: int = 3) -> int | None:
    """The least ``k ≤ max_rounds`` whose game the spoiler wins, if any."""
    for rounds in range(max_rounds + 1):
        if not mso_equivalent_strings(u, v, rounds):
            return rounds
    return None
