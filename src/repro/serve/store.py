"""The mutable document layer under the query server.

A :class:`DocumentStore` holds named :class:`~repro.core.pipeline.Document`
revisions and serves selections through the *incremental* engine paths:

* edits (:meth:`DocumentStore.replace_subtree` /
  :meth:`DocumentStore.delete_subtree`) rebuild only the spine from the
  edit site to the root — every untouched subtree object is shared with
  the previous revision (``Document.with_replaced`` / ``with_deleted``);
* selections re-derive only the dirty subtree types: the per-document
  type memos of :meth:`repro.perf.trees.MarkedQueryEngine.incremental_type`
  (and :func:`repro.perf.nptrees.encode_with_memo` for ``engine="numpy"``)
  recognize shared subtrees by object identity, so after a small edit the
  typing work is proportional to the spine, and the selection itself
  assembles cached per-``(type, context)`` relative path sets.

Every select is equivalent to ``Document.select`` on a fresh parse of the
current revision — the serve differential suites hold this byte-identical
across engines, and ``verify=True`` re-checks it per call (the
belt-and-braces mode the oracle tests run under).
"""

from __future__ import annotations

from ..core.pipeline import Document, _pattern_for
from ..core.query import Query
from ..trees.dtd import DTD
from ..trees.tree import Path, Tree
from ..trees.xml import XMLElement, parse_document
from .. import obs

#: Memo entries tolerated per document before dead nodes are pruned, as
#: a multiple of the live tree size (old revisions keep their entries
#: until an edit pushes a memo past this factor).
_PRUNE_FACTOR = 4
_PRUNE_SLACK = 256


class IncrementalMismatchError(AssertionError):
    """``verify=True`` caught an incremental result diverging from fresh."""


class StoredDocument:
    """One named document revision plus its per-engine incremental state."""

    __slots__ = ("name", "document", "dtd", "revision", "_memos", "_np_enc")

    def __init__(
        self, name: str, document: Document, dtd: DTD | None = None
    ) -> None:
        self.name = name
        self.document = document
        self.dtd = dtd
        self.revision = 0
        #: ``id(engine) -> (engine, type memo)`` — identity-checked on
        #: lookup because engine registries may evict and ids recycle.
        #: The numpy path stores its universe-level memo under ``"np"``.
        self._memos: dict = {}
        self._np_enc: tuple[Tree, object] | None = None

    @property
    def tree(self) -> Tree:
        """The current revision's tree abstraction."""
        return self.document.tree

    def memo_for(self, engine) -> dict:
        """The ``id(node) -> (node, type id)`` memo of one dict engine."""
        key = id(engine)
        found = self._memos.get(key)
        if found is not None and found[0] is engine:
            return found[1]
        memo: dict = {}
        self._memos[key] = (engine, memo)
        return memo

    def np_memo(self) -> dict:
        """The universe-level type memo shared by every numpy engine."""
        found = self._memos.get("np")
        if found is None:
            found = (None, {})
            self._memos["np"] = found
        return found[1]

    def np_encoding(self):
        """One struct-of-arrays encoding per revision (numpy path)."""
        if self._np_enc is None or self._np_enc[0] is not self.tree:
            from ..perf.nptrees import encode_with_memo

            self._np_enc = (self.tree, encode_with_memo(self.tree, self.np_memo()))
        return self._np_enc[1]

    def bump(self, document: Document) -> None:
        """Install a new revision and prune memo entries for dead nodes."""
        self.document = document
        self.revision += 1
        self._np_enc = None
        limit = _PRUNE_FACTOR * document.tree.size + _PRUNE_SLACK
        if not any(len(memo) > limit for _, memo in self._memos.values()):
            return
        live: set[int] = set()
        stack = [document.tree]
        while stack:
            node = stack.pop()
            live.add(id(node))
            stack.extend(node.children)
        for key, (engine, memo) in list(self._memos.items()):
            if len(memo) > limit:
                kept = {k: v for k, v in memo.items() if k in live}
                self._memos[key] = (engine, kept)
                obs.SINK.incr("serve.memo_pruned", len(memo) - len(kept))

    def info(self) -> dict:
        """The JSON-ready description the protocol returns for this doc."""
        return {
            "doc": self.name,
            "revision": self.revision,
            "nodes": self.tree.size,
            "alphabet": list(self.document.alphabet),
        }


class DocumentStore:
    """Named mutable documents with incremental re-selection."""

    def __init__(self) -> None:
        self._docs: dict[str, StoredDocument] = {}

    # -- container ----------------------------------------------------

    def __len__(self) -> int:
        return len(self._docs)

    def __contains__(self, name: str) -> bool:
        return name in self._docs

    def names(self) -> list[str]:
        """The stored document names, sorted."""
        return sorted(self._docs)

    def get(self, name: str) -> StoredDocument:
        """The stored document, or :class:`KeyError` with the known names."""
        found = self._docs.get(name)
        if found is None:
            raise KeyError(
                f"unknown document {name!r}; loaded: {self.names()!r}"
            )
        return found

    def document(self, name: str) -> Document:
        """The current :class:`Document` revision under ``name``."""
        return self.get(name).document

    # -- mutation ------------------------------------------------------

    def load(
        self, name: str, text: str, dtd: DTD | None = None
    ) -> StoredDocument:
        """Parse (and optionally validate) a document under ``name``.

        Re-loading an existing name replaces it wholesale — revision
        counting and incremental state start over.
        """
        obs.SINK.incr("serve.store_loads")
        stored = StoredDocument(name, Document.from_text(text, dtd), dtd)
        self._docs[name] = stored
        return stored

    def load_document(
        self, name: str, document: Document, dtd: DTD | None = None
    ) -> StoredDocument:
        """Install an already-parsed document under ``name``."""
        obs.SINK.incr("serve.store_loads")
        stored = StoredDocument(name, document, dtd)
        self._docs[name] = stored
        return stored

    def unload(self, name: str) -> None:
        """Drop a stored document (and its incremental state)."""
        self.get(name)
        del self._docs[name]

    def replace_subtree(
        self, name: str, path: Path, fragment: XMLElement | str
    ) -> StoredDocument:
        """Replace the subtree at ``path`` with a parsed fragment.

        ``fragment`` is an :class:`XMLElement` (or a raw text chunk); a
        serialized fragment string goes through
        :func:`~repro.trees.xml.parse_document` first — the server's
        ``replace`` op does exactly that.  Only the spine is rebuilt,
        which is what keeps the incremental type memos hot.
        """
        obs.SINK.incr("serve.store_edits")
        stored = self.get(name)
        stored.bump(stored.document.with_replaced(tuple(path), fragment))
        return stored

    def delete_subtree(self, name: str, path: Path) -> StoredDocument:
        """Remove the subtree at ``path`` (its later siblings shift left)."""
        obs.SINK.incr("serve.store_edits")
        stored = self.get(name)
        stored.bump(stored.document.with_deleted(tuple(path)))
        return stored

    # -- querying ------------------------------------------------------

    def select(
        self,
        name: str,
        query: Query | str,
        engine: str | None = None,
        verify: bool = False,
    ) -> list[Path]:
        """Document-ordered selected paths; ≡ ``Document.select``.

        The default (table) engine runs
        :meth:`~repro.perf.trees.MarkedQueryEngine.incremental_evaluate`
        against this document's type memo; ``engine="numpy"`` evaluates
        the per-revision :func:`~repro.perf.nptrees.encode_with_memo`
        encoding; ``engine="naive"`` is the uncached oracle (a fresh
        full evaluation — the escape hatch, never incremental).
        ``verify=True`` re-runs the plain ``Document.select`` path and
        raises :class:`IncrementalMismatchError` on any divergence.
        """
        obs.SINK.incr("serve.store_selects")
        from ..perf.registry import validate_engine

        validate_engine(engine)
        stored = self.get(name)
        document = stored.document
        compiled = None
        query_obj = query
        if isinstance(query, str):
            query_obj = _pattern_for(query, document.alphabet)
        compiled = getattr(query_obj, "compiled", None)
        if compiled is None or engine == "naive":
            # No marked automaton to key incremental state on (or the
            # oracle engine was asked for): the one-shot path.
            result = document.select(query_obj, engine=engine)
        elif engine == "numpy":
            result = self._select_numpy(stored, query_obj)
        else:
            from ..perf.trees import marked_engine

            eng = marked_engine(compiled())
            result = sorted(
                eng.incremental_evaluate(stored.tree, stored.memo_for(eng))
            )
        if verify:
            obs.SINK.incr("serve.verify_checks")
            fresh = document.select(query_obj, engine=engine)
            if result != fresh:
                obs.SINK.incr("serve.verify_failures")
                raise IncrementalMismatchError(
                    f"incremental select diverged on {name!r} "
                    f"rev {stored.revision}: {result!r} != {fresh!r}"
                )
        return result

    def select_iter(
        self, name: str, query: Query | str, engine: str | None = None
    ):
        """Stream selected paths in document order; ≡ :meth:`select`.

        The constant-delay enumeration path over the stored document's
        *warm* incremental state: the default (table) engine threads
        this document's per-engine type memo into
        :func:`repro.perf.enumerate.stream_select`, so with a hot memo
        the preprocessing pass is an O(1) root identity hit and the
        first answer costs only its jump chain; ``engine="numpy"``
        streams over the per-revision :meth:`StoredDocument.np_encoding`
        combo tables; ``engine="naive"`` degrades to iterating a fresh
        materialized select.  The iterator is bound to the revision it
        was opened on — the server's cursor ops invalidate it on edits.
        """
        obs.SINK.incr("serve.store_select_iters")
        from ..perf.registry import validate_engine

        validate_engine(engine)
        stored = self.get(name)
        document = stored.document
        query_obj = query
        if isinstance(query, str):
            query_obj = _pattern_for(query, document.alphabet)
        compiled = getattr(query_obj, "compiled", None)
        if compiled is None or engine == "naive":
            return document.select_iter(query_obj, engine=engine)
        from ..perf.enumerate import stream_select

        kwargs: dict = {}
        if engine == "numpy":
            from ..perf.nptrees import tree_kernel

            if tree_kernel("numpy") is not None:
                kwargs["encoding"] = stored.np_encoding()
        if "encoding" not in kwargs:
            from ..perf.trees import marked_engine

            eng = marked_engine(compiled())
            kwargs["type_memo"] = stored.memo_for(eng)
        return stream_select(
            query_obj, stored.tree, engine=engine, **kwargs
        )

    def _select_numpy(self, stored: StoredDocument, query_obj) -> list[Path]:
        from ..perf.nptrees import tree_kernel

        kernel = tree_kernel("numpy")
        if kernel is None:  # numpy missing: degrade like Document.select
            from ..perf.trees import marked_engine

            eng = marked_engine(query_obj.compiled())
            return sorted(
                eng.incremental_evaluate(stored.tree, stored.memo_for(eng))
            )
        eng = kernel.marked_engine(query_obj.compiled())
        return sorted(eng.evaluate(stored.tree, stored.np_encoding()))

    def info(self) -> dict:
        """Store-wide description: one :meth:`StoredDocument.info` per doc."""
        return {
            "documents": [self._docs[name].info() for name in self.names()]
        }


def parse_fragment(text: str) -> XMLElement:
    """Parse one XML fragment (the server's ``fragment`` field)."""
    return parse_document(text)
