"""The always-on query service: warm engines, mutable documents.

``repro serve`` (see :mod:`repro.cli`) wraps :class:`QueryServer` — a
long-lived asyncio daemon speaking newline-delimited JSON over stdio,
TCP and plain HTTP, keeping every compile/engine cache warm across
requests.  Documents live in a :class:`DocumentStore` and are mutable
via subtree replace/delete; re-selection after an edit is *incremental*,
re-deriving only the dirty subtree types (the Theorem 3.9 two-sweep
structure makes untouched subtree work reusable verbatim).  Protocol and
API reference: ``docs/SERVE.md``.
"""

from .protocol import (
    ERROR_KINDS,
    OPS,
    ProtocolError,
    decode_frame,
    encode_frame,
)
from .server import QueryServer
from .store import DocumentStore, IncrementalMismatchError, StoredDocument

__all__ = [
    "ERROR_KINDS",
    "OPS",
    "DocumentStore",
    "IncrementalMismatchError",
    "ProtocolError",
    "QueryServer",
    "StoredDocument",
    "decode_frame",
    "encode_frame",
]
