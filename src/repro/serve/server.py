"""The always-on asyncio query server (``repro serve``).

One process, one event loop, warm state: the pattern LRU, the
content-addressed compile cache, the :mod:`repro.perf` engine registries
and the numpy :data:`~repro.perf.nptrees.UNIVERSE` all live for the
server's lifetime, so every request after the first skips process start,
compilation and table construction — the cold-vs-warm gap
``benchmarks/bench_serve.py`` measures.

Transports: newline-delimited JSON over stdio (:meth:`QueryServer.run_stdio`)
and TCP (:meth:`QueryServer.start_tcp`); the TCP listener also answers
plain HTTP (``POST /`` with an NDJSON body, ``GET /stats``) by sniffing
the first request line.  The frame grammar lives in
:mod:`repro.serve.protocol` and ``docs/SERVE.md``.

Concurrency model: requests on one connection are handled strictly in
order (responses never reorder); concurrent connections interleave at
request granularity.  Query requests are micro-batched — concurrent
requests naming the same ``(query, engine, verify)`` drain as one group
on the next loop tick (or after ``batch_window`` seconds), sharing one
compiled automaton pass; groups of inline documents route through
:func:`repro.core.pipeline.batch_select` (and its
:class:`~repro.perf.parallel.ParallelExecutor` sharding when the server
runs with ``jobs > 1``).  Execution itself is synchronous inside the
event loop — selections never await — which is what makes the per-group
:func:`repro.obs.collecting` scope race-free without a sink per task.
"""

from __future__ import annotations

import asyncio
import sys
import time

from .. import obs
from ..core.pipeline import Document, batch_select
from ..lang.errors import QuerySyntaxError
from ..trees.dtd import DTDError, parse_dtd
from ..trees.xml import XMLError
from .protocol import (
    ProtocolError,
    bool_field,
    budget_field,
    count_field,
    decode_frame,
    encode_frame,
    error_response,
    ok_response,
    op_field,
    path_field,
    paths_payload,
    request_id,
    string_field,
)
from .store import DocumentStore, IncrementalMismatchError, parse_fragment

_UNSET = object()


def _translate(error: Exception) -> ProtocolError:
    """Map a per-request exception onto the structured error taxonomy."""
    if isinstance(error, ProtocolError):
        return error
    if isinstance(error, QuerySyntaxError):
        return ProtocolError(
            "query-syntax",
            str(error),
            offset=error.offset,
            line=error.line,
            column=error.column,
        )
    if isinstance(error, KeyError):
        return ProtocolError("not-found", error.args[0] if error.args else "")
    if isinstance(error, (DTDError, XMLError)):
        return ProtocolError("validation", str(error))
    if isinstance(error, IncrementalMismatchError):
        return ProtocolError("engine", str(error))
    if isinstance(error, ValueError):
        # ValidationError, unknown engines, root edits: caller mistakes.
        kind = "engine" if "engine" in str(error) else "bad-request"
        if type(error).__name__ == "ValidationError":
            kind = "validation"
        return ProtocolError(kind, str(error))
    return ProtocolError("internal", f"{type(error).__name__}: {error}")


class _QueryJob:
    """One admitted query request, waiting in (or past) a batch group."""

    __slots__ = (
        "rid",
        "name",
        "document",
        "budget_steps",
        "budget_ms",
        "start",
        "future",
        "result",
        "error",
        "response",
    )

    def __init__(self, rid, name, document, budget_steps, budget_ms) -> None:
        self.rid = rid
        self.name = name
        self.document = document
        self.budget_steps = budget_steps
        self.budget_ms = budget_ms
        self.start = time.perf_counter()
        self.future: asyncio.Future = asyncio.get_running_loop().create_future()
        self.result = _UNSET
        self.error: ProtocolError | None = None
        self.response: dict | None = None


#: Default answers per ``next_page`` when neither the cursor nor the
#: request names a page size.
DEFAULT_PAGE_SIZE = 100

_CURSOR_OPS = ("open_cursor", "next_page", "close_cursor")


class _Cursor:
    """One open constant-delay enumeration cursor.

    Wraps a :func:`repro.perf.enumerate.stream_select` iterator (via
    ``DocumentStore.select_iter`` for stored documents, so the warm
    incremental state is threaded in) pinned to the revision it was
    opened on.  ``pending`` buffers answers pulled off the iterator by a
    page that tripped its time budget — they are returned first by the
    retry, so a budget trip never loses answers.  ``stats`` accumulates
    the per-cursor ``obs`` counters reported under ``stats.cursors``.
    """

    __slots__ = (
        "cid",
        "name",
        "revision",
        "engine",
        "query",
        "page_size",
        "budget_ms",
        "iterator",
        "pending",
        "emitted",
        "pages",
        "done",
        "stats",
    )

    def __init__(
        self, cid, name, revision, engine, query, page_size, budget_ms, iterator
    ) -> None:
        self.cid = cid
        self.name = name
        self.revision = revision
        self.engine = engine
        self.query = query
        self.page_size = page_size
        self.budget_ms = budget_ms
        self.iterator = iterator
        self.pending: list = []
        self.emitted = 0
        self.pages = 0
        self.done = False
        self.stats = obs.Stats()

    def close(self) -> None:
        """Release the underlying generator (idempotent)."""
        close = getattr(self.iterator, "close", None)
        if close is not None:
            close()

    def describe(self) -> dict:
        """The JSON-ready per-cursor block of the stats report."""
        return {
            "doc": self.name,
            "revision": self.revision,
            "engine": self.engine,
            "query": self.query,
            "answers": self.emitted,
            "pages": self.pages,
            "counters": dict(self.stats.counters),
        }


class QueryServer:
    """The long-lived query service over one :class:`DocumentStore`."""

    def __init__(
        self,
        store: DocumentStore | None = None,
        engine: str | None = None,
        verify: bool = False,
        budget_steps: int | None = None,
        budget_ms: float | None = None,
        batch_window: float = 0.0,
        jobs: int | None = None,
    ) -> None:
        self.store = store if store is not None else DocumentStore()
        self.engine = engine
        self.verify = verify
        self.budget_steps = budget_steps
        self.budget_ms = budget_ms
        self.batch_window = batch_window
        self.jobs = jobs
        #: Server-lifetime stats: every request group's counters merge
        #: here, plus ``serve.request_ms`` samples for the p50/p99 gauges.
        self.lifetime = obs.Stats()
        self._pending: dict[tuple, list[_QueryJob]] = {}
        self._servers: list[asyncio.AbstractServer] = []
        self._connections: set[asyncio.Task] = set()
        self._shutdown: asyncio.Event | None = None
        self._cursors: dict[str, _Cursor] = {}
        self._cursor_seq = 0

    # -- lifecycle ------------------------------------------------------

    def _shutdown_event(self) -> asyncio.Event:
        if self._shutdown is None:
            self._shutdown = asyncio.Event()
        return self._shutdown

    @property
    def shutting_down(self) -> bool:
        """Has a ``shutdown`` request been admitted?"""
        return self._shutdown is not None and self._shutdown.is_set()

    async def start_tcp(self, host: str = "127.0.0.1", port: int = 0):
        """Start the TCP/HTTP listener; returns ``(host, port)`` bound."""
        self._shutdown_event()
        server = await asyncio.start_server(self._on_connection, host, port)
        self._servers.append(server)
        return server.sockets[0].getsockname()[:2]

    async def wait_closed(self) -> None:
        """Block until shutdown, then drain in-flight work and close.

        In-flight requests (already read off a connection) complete and
        their responses are written; idle connections are closed.  This
        is the ``shutdown`` op's contract the soak test exercises.
        """
        await self._shutdown_event().wait()
        for server in self._servers:
            server.close()
        for server in self._servers:
            await server.wait_closed()
        if self._connections:
            await asyncio.gather(
                *list(self._connections), return_exceptions=True
            )
        self._expire_cursors()
        self._servers.clear()

    async def run_stdio(self) -> None:
        """Serve NDJSON frames over stdin/stdout until EOF or shutdown."""
        self._shutdown_event()
        loop = asyncio.get_running_loop()
        stdin = sys.stdin.buffer
        stdout = sys.stdout.buffer
        while not self.shutting_down:
            line = await loop.run_in_executor(None, stdin.readline)
            if not line:
                break
            if not line.strip():
                continue
            response = await self.handle_line(line)
            stdout.write(response)
            stdout.flush()

    # -- connection handling --------------------------------------------

    async def _on_connection(self, reader, writer) -> None:
        task = asyncio.current_task()
        assert task is not None
        self._connections.add(task)
        self.lifetime.incr("serve.connections")
        try:
            first = await self._read_or_shutdown(reader)
            if first.split(b" ")[0] in (b"GET", b"POST") and b"HTTP/" in first:
                await self._handle_http(first, reader, writer)
                return
            line = first
            while line:
                if line.strip():
                    response = await self.handle_line(line)
                    writer.write(response)
                    await writer.drain()
                if self.shutting_down:
                    break
                line = await self._read_or_shutdown(reader)
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            self._connections.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _read_or_shutdown(self, reader) -> bytes:
        """The next request line, or ``b""`` once shutdown wins the race."""
        read = asyncio.ensure_future(reader.readline())
        stop = asyncio.ensure_future(self._shutdown_event().wait())
        done, _pending = await asyncio.wait(
            {read, stop}, return_when=asyncio.FIRST_COMPLETED
        )
        if read in done:
            stop.cancel()
            return read.result()
        read.cancel()
        return b""

    async def _handle_http(self, first: bytes, reader, writer) -> None:
        """One-shot HTTP: ``POST /`` (NDJSON body) or ``GET /stats``."""
        self.lifetime.incr("serve.http_requests")
        parts = first.split(b" ")
        method, target = parts[0], parts[1] if len(parts) > 1 else b"/"
        headers: dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        status = "200 OK"
        if method == b"GET":
            if target.split(b"?")[0] == b"/stats":
                body = encode_frame(await self.handle_frame({"op": "stats"}))
            else:
                status = "404 Not Found"
                body = encode_frame(
                    error_response(
                        None,
                        ProtocolError(
                            "bad-request", f"no route {target.decode()!r}"
                        ),
                    )
                )
        else:
            length = int(headers.get("content-length", "0") or "0")
            payload = await reader.readexactly(length) if length else b""
            chunks = [
                await self.handle_line(line)
                for line in payload.splitlines()
                if line.strip()
            ]
            body = b"".join(chunks)
        head = (
            f"HTTP/1.1 {status}\r\n"
            "Content-Type: application/x-ndjson\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Connection: close\r\n\r\n"
        ).encode("latin-1")
        writer.write(head + body)
        await writer.drain()

    # -- request handling -----------------------------------------------

    async def handle_line(self, line: str | bytes) -> bytes:
        """One request line → one encoded response line (never raises)."""
        try:
            frame = decode_frame(line)
        except ProtocolError as error:
            self.lifetime.incr("serve.protocol_errors")
            return encode_frame(error_response(None, error))
        return encode_frame(await self.handle_frame(frame))

    async def handle_frame(self, frame: dict) -> dict:
        """One request object → one response object (never raises)."""
        rid = None
        start = time.perf_counter()
        try:
            rid = request_id(frame)
            op = op_field(frame)
            if op == "query":
                response = await self._handle_query(rid, frame)
            elif op in _CURSOR_OPS:
                response = self._handle_cursor(op, rid, frame)
            else:
                response = self._handle_simple(op, rid, frame)
        except ProtocolError as error:
            self.lifetime.incr("serve.request_errors")
            response = error_response(rid, error)
        except Exception as error:  # noqa: BLE001 — structured catch-all
            self.lifetime.incr("serve.request_errors")
            response = error_response(rid, _translate(error))
        self.lifetime.incr("serve.requests")
        self.lifetime.observe(
            "serve.request_ms", (time.perf_counter() - start) * 1000.0
        )
        return response

    def _handle_simple(self, op: str, rid, frame: dict) -> dict:
        """Every op except ``query``: synchronous, executed immediately."""
        if op == "ping":
            return ok_response(
                rid, {"pong": True, "documents": len(self.store)}
            )
        if op == "docs":
            return ok_response(rid, self.store.info())
        if op == "stats":
            return ok_response(rid, self.stats_report())
        if op == "shutdown":
            expired = self._expire_cursors()
            self._shutdown_event().set()
            return ok_response(
                rid, {"shutting_down": True, "cursors_expired": expired}
            )
        stats = obs.Stats()
        try:
            with obs.collecting(stats):
                if op == "load":
                    name = string_field(frame, "doc", required=True)
                    text = string_field(frame, "text", required=True)
                    dtd_text = string_field(frame, "dtd")
                    dtd = parse_dtd(dtd_text) if dtd_text else None
                    result = self.store.load(name, text, dtd).info()
                elif op == "unload":
                    name = string_field(frame, "doc", required=True)
                    self.store.unload(name)
                    result = {"unloaded": name}
                elif op == "replace":
                    name = string_field(frame, "doc", required=True)
                    path = path_field(frame)
                    fragment_text = string_field(frame, "fragment")
                    text = string_field(frame, "text")
                    if (fragment_text is None) == (text is None):
                        raise ProtocolError(
                            "bad-request",
                            "replace needs exactly one of fragment or text",
                        )
                    fragment = (
                        parse_fragment(fragment_text)
                        if fragment_text is not None
                        else text
                    )
                    result = self.store.replace_subtree(
                        name, path, fragment
                    ).info()
                else:
                    assert op == "delete", op
                    name = string_field(frame, "doc", required=True)
                    path = path_field(frame)
                    result = self.store.delete_subtree(name, path).info()
        finally:
            self.lifetime.merge(stats)
        return ok_response(
            rid, result, stats={"counters": dict(stats.counters)}
        )

    # -- cursor ops (constant-delay enumeration) --------------------------

    def _handle_cursor(self, op: str, rid, frame: dict) -> dict:
        """Dispatch ``open_cursor`` / ``next_page`` / ``close_cursor``.

        Per-request counters are collected exactly like ``_handle_simple``
        and additionally merged into the cursor's own ``stats``, which is
        what the ``stats`` op reports per open cursor.
        """
        cursor: _Cursor | None = None
        if op != "open_cursor":
            cid = string_field(frame, "cursor", required=True)
            cursor = self._cursors.get(cid)
            if cursor is None:
                raise ProtocolError(
                    "not-found", f"unknown cursor {cid!r}", cursor=cid
                )
        stats = obs.Stats()
        try:
            with obs.collecting(stats):
                if op == "open_cursor":
                    cursor, result = self._open_cursor(frame)
                elif op == "next_page":
                    result = self._next_page(cursor, frame)
                else:
                    assert op == "close_cursor", op
                    result = self._close_cursor(cursor)
        except ProtocolError as error:
            if error.kind == "budget-exceeded":
                error.extras.setdefault("counters", dict(stats.counters))
            raise
        finally:
            self.lifetime.merge(stats)
            if cursor is not None:
                cursor.stats.merge(stats)
        return ok_response(
            rid, result, stats={"counters": dict(stats.counters)}
        )

    def _open_cursor(self, frame: dict) -> tuple[_Cursor, dict]:
        """Admit and open one enumeration cursor; first page comes later."""
        query = string_field(frame, "query", required=True)
        engine = string_field(frame, "engine", default=self.engine)
        page_size = count_field(frame, "page_size", DEFAULT_PAGE_SIZE)
        budget_steps = budget_field(frame, "budget_steps", self.budget_steps)
        budget_ms = budget_field(frame, "budget_ms", self.budget_ms)
        name = string_field(frame, "doc")
        text = string_field(frame, "text")
        if (name is None) == (text is None):
            raise ProtocolError(
                "bad-request", "open_cursor needs exactly one of doc or text"
            )
        from ..perf.registry import validate_engine

        validate_engine(engine)
        revision = None
        if text is not None:
            document = Document.from_text(text)
            tree = document.tree
        else:
            stored = self.store.get(name)
            revision = stored.revision
            tree = stored.tree
        if budget_steps is not None and tree.size > budget_steps:
            self.lifetime.incr("serve.budget_steps_trips")
            raise ProtocolError(
                "budget-exceeded",
                f"document has {tree.size} nodes, over the "
                f"{budget_steps}-step budget",
                budget_steps=budget_steps,
                nodes=tree.size,
            )
        if text is not None:
            iterator = document.select_iter(query, engine=engine)
        else:
            iterator = self.store.select_iter(name, query, engine=engine)
        cid = f"c{self._cursor_seq}"
        self._cursor_seq += 1
        cursor = _Cursor(
            cid, name, revision, engine, query, page_size, budget_ms, iterator
        )
        self._cursors[cid] = cursor
        obs.SINK.incr("serve.cursor_opens")
        result = {"cursor": cid, "page_size": page_size}
        if name is not None:
            result["doc"] = name
            result["revision"] = revision
        return cursor, result

    def _next_page(self, cursor: _Cursor, frame: dict) -> dict:
        """Pull one page off the cursor, under a per-call time budget.

        Answers pulled before a budget trip are parked on
        ``cursor.pending`` and lead the next page, so trips lose nothing.
        A stored-document edit (or unload) since ``open_cursor``
        invalidates the cursor with a structured ``cursor-invalid`` error
        — the stream was enumerating the old revision's tree.
        """
        if cursor.name is not None:
            stored = (
                self.store.get(cursor.name)
                if cursor.name in self.store
                else None
            )
            if stored is None or stored.revision != cursor.revision:
                self._cursors.pop(cursor.cid, None)
                cursor.close()
                obs.SINK.incr("serve.cursor_invalidations")
                raise ProtocolError(
                    "cursor-invalid",
                    f"document {cursor.name!r} changed under cursor "
                    f"{cursor.cid!r}; re-open to enumerate the new revision",
                    cursor=cursor.cid,
                    doc=cursor.name,
                    opened_revision=cursor.revision,
                    current_revision=None if stored is None else stored.revision,
                )
        page_size = count_field(frame, "page_size", cursor.page_size)
        budget_ms = budget_field(frame, "budget_ms", cursor.budget_ms)
        deadline = (
            None
            if budget_ms is None
            else time.perf_counter() + budget_ms / 1000.0
        )
        page: list = cursor.pending[:page_size]
        cursor.pending = cursor.pending[page_size:]
        while len(page) < page_size and not cursor.done and not cursor.pending:
            if deadline is not None and time.perf_counter() >= deadline:
                cursor.pending = page + cursor.pending
                self.lifetime.incr("serve.budget_ms_trips")
                raise ProtocolError(
                    "budget-exceeded",
                    f"next_page exceeded its {budget_ms} ms budget; "
                    f"{len(page)} answers buffered for retry",
                    budget_ms=budget_ms,
                    buffered=len(page),
                    cursor=cursor.cid,
                )
            try:
                page.append(next(cursor.iterator))
            except StopIteration:
                cursor.done = True
        offset = cursor.emitted
        cursor.emitted += len(page)
        cursor.pages += 1
        obs.SINK.incr("serve.cursor_pages")
        obs.SINK.incr("serve.cursor_answers", len(page))
        done = cursor.done and not cursor.pending
        if done:
            self._cursors.pop(cursor.cid, None)
            cursor.close()
        result = {
            "cursor": cursor.cid,
            "paths": paths_payload(page),
            "count": len(page),
            "offset": offset,
            "done": done,
        }
        if cursor.name is not None:
            result["doc"] = cursor.name
            result["revision"] = cursor.revision
        return result

    def _close_cursor(self, cursor: _Cursor) -> dict:
        """Release the cursor and its generator explicitly."""
        self._cursors.pop(cursor.cid, None)
        cursor.close()
        obs.SINK.incr("serve.cursor_closes")
        return {
            "closed": cursor.cid,
            "answers": cursor.emitted,
            "pages": cursor.pages,
        }

    def _expire_cursors(self) -> int:
        """Drop every open cursor (shutdown drain); idempotent."""
        expired = 0
        while self._cursors:
            _cid, cursor = self._cursors.popitem()
            cursor.close()
            self.lifetime.incr("serve.cursor_expired")
            expired += 1
        return expired

    # -- the query path (micro-batched) ----------------------------------

    async def _handle_query(self, rid, frame: dict) -> dict:
        query = string_field(frame, "query", required=True)
        engine = string_field(frame, "engine", default=self.engine)
        verify = bool_field(frame, "verify", self.verify)
        budget_steps = budget_field(frame, "budget_steps", self.budget_steps)
        budget_ms = budget_field(frame, "budget_ms", self.budget_ms)
        name = string_field(frame, "doc")
        text = string_field(frame, "text")
        if (name is None) == (text is None):
            raise ProtocolError(
                "bad-request", "query needs exactly one of doc or text"
            )
        from ..perf.registry import validate_engine

        validate_engine(engine)
        document = None
        if text is not None:
            document = Document.from_text(text)
        else:
            self.store.get(name)  # fail fast with not-found
        job = _QueryJob(rid, name, document, budget_steps, budget_ms)
        key = (query, engine, verify)
        group = self._pending.get(key)
        if group is None:
            self._pending[key] = [job]
            asyncio.get_running_loop().create_task(self._drain(key))
        else:
            group.append(job)
        await job.future
        assert job.response is not None
        return job.response

    async def _drain(self, key: tuple) -> None:
        if self.batch_window > 0:
            await asyncio.sleep(self.batch_window)
        else:
            await asyncio.sleep(0)
        jobs = self._pending.pop(key, [])
        if jobs:
            self._execute_group(key, jobs)

    def _admit(self, job: _QueryJob) -> int:
        """The node count the request will pay; trips the step budget."""
        tree = (
            job.document.tree
            if job.document is not None
            else self.store.get(job.name).tree
        )
        if job.budget_steps is not None and tree.size > job.budget_steps:
            self.lifetime.incr("serve.budget_steps_trips")
            raise ProtocolError(
                "budget-exceeded",
                f"document has {tree.size} nodes, over the "
                f"{job.budget_steps}-step budget",
                budget_steps=job.budget_steps,
                nodes=tree.size,
            )
        return tree.size

    def _execute_group(self, key: tuple, jobs: list[_QueryJob]) -> None:
        """Run one batch group synchronously and resolve every future."""
        query, engine, verify = key
        if len(jobs) > 1:
            self.lifetime.incr("serve.batches")
            self.lifetime.incr("serve.batch_members", len(jobs))
        stats = obs.Stats()
        with obs.collecting(stats):
            for job in jobs:
                try:
                    self._admit(job)
                except Exception as error:  # noqa: BLE001
                    job.error = _translate(error)
            inline = [
                j for j in jobs if j.document is not None and j.error is None
            ]
            if len(inline) > 1:
                # The same compiled query over many one-shot documents:
                # one batch_select pass (sharded when jobs > 1).
                try:
                    results = batch_select(
                        [j.document for j in inline],
                        query,
                        jobs=self.jobs,
                        engine=engine,
                    )
                except Exception:
                    pass  # re-run per job below for precise attribution
                else:
                    for job, result in zip(inline, results):
                        job.result = result
                        obs.SINK.incr("serve.selects")
            for job in jobs:
                if job.error is not None or job.result is not _UNSET:
                    continue
                try:
                    if job.document is not None:
                        job.result = job.document.select(query, engine=engine)
                    else:
                        job.result = self.store.select(
                            job.name, query, engine=engine, verify=verify
                        )
                    obs.SINK.incr("serve.selects")
                except Exception as error:  # noqa: BLE001
                    job.error = _translate(error)
        self.lifetime.merge(stats)
        counters = dict(stats.counters)
        now = time.perf_counter()
        for job in jobs:
            elapsed_ms = (now - job.start) * 1000.0
            if (
                job.error is None
                and job.budget_ms is not None
                and elapsed_ms > job.budget_ms
            ):
                self.lifetime.incr("serve.budget_ms_trips")
                job.error = ProtocolError(
                    "budget-exceeded",
                    f"request took {elapsed_ms:.3f} ms, over the "
                    f"{job.budget_ms} ms budget",
                    budget_ms=job.budget_ms,
                )
            job_stats = {
                "batch": len(jobs),
                "engine": engine,
                "elapsed_ms": round(elapsed_ms, 3),
                "counters": counters,
            }
            if job.error is not None:
                if job.error.kind == "budget-exceeded":
                    job.error.extras.setdefault("counters", counters)
                job.response = error_response(job.rid, job.error)
            else:
                result: dict = {
                    "count": len(job.result),
                    "paths": paths_payload(job.result),
                }
                if job.name is not None:
                    stored = self.store.get(job.name)
                    result["doc"] = job.name
                    result["revision"] = stored.revision
                job.response = ok_response(job.rid, result, stats=job_stats)
            if not job.future.done():
                job.future.set_result(None)

    # -- introspection ---------------------------------------------------

    def stats_report(self) -> dict:
        """The ``stats`` op payload: lifetime report + latency gauges."""
        report = self.lifetime.report()
        latency = self.lifetime.sample_stats("serve.request_ms")
        latency["p50"] = self.lifetime.percentile("serve.request_ms", 50)
        latency["p99"] = self.lifetime.percentile("serve.request_ms", 99)
        return {
            "requests": self.lifetime.counters.get("serve.requests", 0),
            "latency_ms": latency,
            "documents": self.store.info()["documents"],
            "cursors": {
                "open": len(self._cursors),
                "cursors": {
                    cid: cursor.describe()
                    for cid, cursor in self._cursors.items()
                },
            },
            "report": report,
        }
