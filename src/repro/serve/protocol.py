"""The newline-delimited JSON protocol of the query server.

One request per line, one response per line, in request order per
connection.  Every frame is a JSON object; requests carry an ``op`` (and
an optional ``id``, echoed verbatim), responses carry ``ok`` plus either
``result`` or a structured ``error`` — malformed input never tears the
connection down.  The full op/field reference lives in ``docs/SERVE.md``;
this module owns frame encoding, request validation, and the error
taxonomy, so the asyncio server never raises past a request.
"""

from __future__ import annotations

import json

#: Error kinds, in rough admission order.  ``malformed-frame`` means the
#: line never became a request object; ``bad-request`` a structural field
#: problem; the rest are per-op failures.  ``internal`` is the catch-all
#: that keeps unexpected exceptions inside a structured response.
ERROR_KINDS = (
    "malformed-frame",
    "bad-request",
    "not-found",
    "query-syntax",
    "validation",
    "budget-exceeded",
    "cursor-invalid",
    "engine",
    "internal",
)

#: The ops a request may name (``docs/SERVE.md`` documents each).
OPS = (
    "ping",
    "load",
    "unload",
    "replace",
    "delete",
    "query",
    "open_cursor",
    "next_page",
    "close_cursor",
    "docs",
    "stats",
    "shutdown",
)


class ProtocolError(Exception):
    """A structured request failure: kind + message + JSON-ready extras."""

    def __init__(self, kind: str, message: str, **extras) -> None:
        assert kind in ERROR_KINDS, kind
        super().__init__(message)
        self.kind = kind
        self.extras = extras

    def payload(self) -> dict:
        """The ``error`` object of the response frame."""
        payload = {"kind": self.kind, "message": str(self)}
        payload.update(self.extras)
        return payload


def decode_frame(line: str | bytes) -> dict:
    """One request line → a request object, or ``malformed-frame``."""
    if isinstance(line, bytes):
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError as error:
            raise ProtocolError(
                "malformed-frame", f"frame is not UTF-8: {error}"
            ) from error
    try:
        frame = json.loads(line)
    except json.JSONDecodeError as error:
        raise ProtocolError(
            "malformed-frame",
            f"frame is not JSON: {error.msg}",
            offset=error.pos,
        ) from error
    if not isinstance(frame, dict):
        raise ProtocolError(
            "malformed-frame",
            f"frame must be a JSON object, got {type(frame).__name__}",
        )
    return frame


def encode_frame(obj: dict) -> bytes:
    """One response object → a compact NDJSON line."""
    return (json.dumps(obj, separators=(",", ":")) + "\n").encode("utf-8")


def ok_response(request_id, result: dict, stats: dict | None = None) -> dict:
    """A success frame; ``stats`` attaches the per-request counters."""
    response: dict = {"id": request_id, "ok": True, "result": result}
    if stats is not None:
        response["stats"] = stats
    return response


def error_response(request_id, error: ProtocolError) -> dict:
    """A failure frame with the structured error payload."""
    return {"id": request_id, "ok": False, "error": error.payload()}


def request_id(frame: dict):
    """The echoable ``id`` (any JSON scalar; objects/arrays are rejected)."""
    value = frame.get("id")
    if value is not None and not isinstance(value, (str, int, float, bool)):
        raise ProtocolError("bad-request", "id must be a JSON scalar")
    return value


def op_field(frame: dict) -> str:
    """The validated ``op`` name."""
    op = frame.get("op")
    if not isinstance(op, str):
        raise ProtocolError("bad-request", "missing or non-string op")
    if op not in OPS:
        raise ProtocolError(
            "bad-request", f"unknown op {op!r}", known=list(OPS)
        )
    return op


def string_field(
    frame: dict, name: str, default: str | None = None, required: bool = False
) -> str | None:
    """A string field, defaulted or required."""
    value = frame.get(name, default)
    if value is None and not required:
        return None
    if not isinstance(value, str):
        raise ProtocolError(
            "bad-request", f"field {name!r} must be a string"
        )
    return value


def bool_field(frame: dict, name: str, default: bool = False) -> bool:
    """A boolean field with a default."""
    value = frame.get(name, default)
    if not isinstance(value, bool):
        raise ProtocolError(
            "bad-request", f"field {name!r} must be a boolean"
        )
    return value


def path_field(frame: dict, name: str = "path") -> tuple[int, ...]:
    """A required Dewey path: a JSON array of non-negative integers."""
    value = frame.get(name)
    if not isinstance(value, list) or not all(
        isinstance(i, int) and not isinstance(i, bool) and i >= 0
        for i in value
    ):
        raise ProtocolError(
            "bad-request",
            f"field {name!r} must be an array of non-negative integers",
        )
    return tuple(value)


def budget_field(frame: dict, name: str, default=None):
    """An optional non-negative numeric budget (steps or milliseconds)."""
    value = frame.get(name, default)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ProtocolError(
            "bad-request", f"field {name!r} must be a number"
        )
    if value < 0:
        raise ProtocolError(
            "bad-request", f"field {name!r} must be non-negative"
        )
    return value


def count_field(
    frame: dict, name: str, default: int | None = None
) -> int | None:
    """An optional positive integer field (page sizes and limits)."""
    value = frame.get(name, default)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, int):
        raise ProtocolError(
            "bad-request", f"field {name!r} must be an integer"
        )
    if value < 1:
        raise ProtocolError(
            "bad-request", f"field {name!r} must be positive"
        )
    return value


def paths_payload(paths) -> list[list[int]]:
    """Selected tree paths as JSON arrays, document order preserved."""
    return [list(path) for path in paths]
