"""NFAs, determinization, and regular expressions."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.strings.dfa import AutomatonError
from repro.strings.nfa import EPSILON, NFA, intersection_nfa, union_nfa
from repro.strings.regex import (
    Atom,
    Epsilon,
    RegexError,
    Star,
    concat_all,
    literal,
    optional,
    parse_regex,
    plus,
    to_dfa,
    to_nfa,
    union_all,
)

from ..conftest import all_words


def nfa_ab_star() -> NFA:
    """(ab)* as a hand-built NFA with an ε-move."""
    return NFA.build(
        {0, 1, 2},
        {"a", "b"},
        {(0, "a"): {1}, (1, "b"): {2}, (2, EPSILON): {0}},
        {0},
        {0, 2},
    )


class TestNFA:
    def test_epsilon_closure(self):
        nfa = nfa_ab_star()
        assert nfa.epsilon_closure({2}) == {0, 2}

    def test_accepts(self):
        nfa = nfa_ab_star()
        assert nfa.accepts("")
        assert nfa.accepts("abab")
        assert not nfa.accepts("aba")

    def test_determinize_preserves_language(self):
        nfa = nfa_ab_star()
        dfa = nfa.determinized()
        for word in all_words(["a", "b"], 6):
            assert dfa.accepts(word) == nfa.accepts(word)

    def test_is_empty(self):
        assert NFA.build({0}, {"a"}, {}, {0}, set()).is_empty()
        assert not nfa_ab_star().is_empty()

    def test_reversed(self):
        nfa = to_nfa(parse_regex("a b b"))
        rev = nfa.reversed_nfa()
        assert rev.accepts("bba")
        assert not rev.accepts("abb")

    def test_trimmed_keeps_language(self):
        nfa = nfa_ab_star()
        trimmed = nfa.trimmed()
        for word in all_words(["a", "b"], 5):
            assert trimmed.accepts(word) == nfa.accepts(word)

    def test_intersection_and_union(self):
        starts_a = to_nfa(parse_regex("a (a|b)*"))
        ends_b = to_nfa(parse_regex("(a|b)* b"))
        both = intersection_nfa(starts_a, ends_b)
        either = union_nfa(starts_a, ends_b)
        for word in all_words(["a", "b"], 5):
            assert both.accepts(word) == (
                starts_a.accepts(word) and ends_b.accepts(word)
            )
            assert either.accepts(word) == (
                starts_a.accepts(word) or ends_b.accepts(word)
            )

    def test_invalid_initials_rejected(self):
        with pytest.raises(AutomatonError):
            NFA.build({0}, {"a"}, {}, {1}, set())


class TestRegexParsing:
    def test_atoms_and_star(self):
        dfa = to_dfa(parse_regex("a b* c"))
        assert dfa.accepts(["a", "c"])
        assert dfa.accepts(["a", "b", "b", "c"])
        assert not dfa.accepts(["a", "b"])

    def test_union_bar_and_plus(self):
        # The paper's Example 5.14 expression: up* one up* + up*.
        dfa = to_dfa(parse_regex("up* one up* + up*"))
        assert dfa.accepts([])
        assert dfa.accepts(["up", "one", "up"])
        assert dfa.accepts(["up", "up"])
        assert not dfa.accepts(["one", "one"])

    def test_postfix_plus(self):
        dfa = to_dfa(parse_regex("(a)+"))
        assert dfa.accepts(["a"])
        assert dfa.accepts(["a", "a"])
        assert not dfa.accepts([])

    def test_optional(self):
        dfa = to_dfa(parse_regex("a? b"))
        assert dfa.accepts(["b"])
        assert dfa.accepts(["a", "b"])
        assert not dfa.accepts(["a"])

    def test_epsilon_and_empty(self):
        assert to_dfa(parse_regex("%")).accepts([])
        assert to_dfa(parse_regex("~")).is_empty()

    def test_multichar_symbols(self):
        dfa = to_dfa(parse_regex("(book | article)+"))
        assert dfa.accepts(["book", "article", "book"])
        assert not dfa.accepts([])

    def test_dtd_style_commas(self):
        dfa = to_dfa(parse_regex("author+, title, year"))
        assert dfa.accepts(["author", "title", "year"])
        assert dfa.accepts(["author", "author", "title", "year"])
        assert not dfa.accepts(["title", "year"])

    def test_parse_errors(self):
        with pytest.raises(RegexError):
            parse_regex("a |")
        with pytest.raises(RegexError):
            parse_regex("(a")

    def test_builders(self):
        expr = concat_all(literal("ab"), Star(Atom("c")))
        dfa = to_dfa(expr)
        assert dfa.accepts("abccc")
        assert union_all() == parse_regex("~")
        assert to_dfa(optional(Atom("a"))).accepts([])
        assert not to_dfa(plus(Atom("a"))).accepts([])


class TestRegexAgainstPython:
    @given(st.lists(st.sampled_from("ab"), max_size=7))
    @settings(max_examples=60, deadline=None)
    def test_matches_python_re(self, word):
        import re

        ours = to_dfa(parse_regex("a (a|b)* b | b a*"))
        python = re.compile(r"(a[ab]*b|ba*)\Z")
        assert ours.accepts(word) == bool(python.match("".join(word)))
