"""Shepherdson's 2DFA → DFA conversion (cited in Remark 3.3, Prop 6.2)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.strings.examples import (
    endpoints_if_contains,
    odd_ones_query_automaton,
)
from repro.strings.shepherdson import accepts_via_tables, to_one_way_dfa
from repro.strings.twoway import LEFT_MARKER, RIGHT_MARKER, TwoWayDFA

from ..conftest import all_words


class TestConversion:
    def test_example_3_4_language(self):
        two_way = odd_ones_query_automaton().automaton
        one_way = to_one_way_dfa(two_way)
        for word in all_words(["0", "1"], 8):
            assert one_way.accepts(word) == two_way.accepts(word)

    def test_remark_3_3_language(self):
        two_way = endpoints_if_contains("ab", "a").automaton
        one_way = to_one_way_dfa(two_way)
        for word in all_words(["a", "b"], 7):
            assert one_way.accepts(word) == two_way.accepts(word)

    def test_streaming_tables_agree(self):
        two_way = odd_ones_query_automaton().automaton
        for word in all_words(["0", "1"], 7):
            assert accepts_via_tables(two_way, word) == two_way.accepts(word)

    def test_halt_inside_handled(self):
        """A machine that halts mid-word (no transition) still converts."""
        # Walk right; on 'b' enter a state with no moves: halts there.
        automaton = TwoWayDFA.build(
            {"go", "stuck"},
            {"a", "b"},
            "go",
            {"stuck"},
            {},
            {
                ("go", LEFT_MARKER): "go",
                ("go", "a"): "go",
                ("go", "b"): "stuck",
            },
        )
        # 'go' halts at ⊲ when no b occurs (go not accepting); after a b
        # the head sits one right of it in 'stuck' (accepting, halts
        # unless there is another letter to walk over... stuck has no
        # moves, so it halts immediately wherever it lands).
        one_way = to_one_way_dfa(automaton)
        for word in all_words(["a", "b"], 6):
            assert one_way.accepts(word) == automaton.accepts(word), word

    def test_looping_machine_rejects(self):
        """A cycling 2DFA accepts nothing; the conversion is still total."""
        automaton = TwoWayDFA.build(
            {0, 1},
            {"a"},
            0,
            {0, 1},
            {(1, "a"): 0, (1, RIGHT_MARKER): 0},
            {(0, LEFT_MARKER): 0, (0, "a"): 1},
        )
        one_way = to_one_way_dfa(automaton)
        # On "a" and longer the machine bounces forever between cells.
        assert not one_way.accepts(["a", "a"])
        assert not accepts_via_tables(automaton, ["a", "a"])
        # The empty word halts at ⊲ immediately in state 0 ∈ F... the run:
        # 0 at ⊳ → right → 0 at ⊲, no move (left move needs 'a'): accept.
        assert one_way.accepts([])

    def test_exponential_blowup_is_bounded(self):
        """Proposition 6.2: the converted automaton's size is at most
        exponential in the two-way machine's."""
        two_way = odd_ones_query_automaton().automaton
        one_way = to_one_way_dfa(two_way)
        n = len(two_way.states)
        # Very generous bound: states are (table, status, cell) triples.
        assert len(one_way.states) <= ((2 * n + 2) ** n) * (n + 3) * 4
