"""Theorem 3.9 machinery: behavior functions, first, Assumed (strings)."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.strings.behavior import (
    assumed_via_behavior,
    evaluate_query_via_behavior,
    first_states,
    left_behavior_functions,
    states_closure,
)
from repro.strings.examples import (
    endpoints_if_contains,
    odd_ones_query_automaton,
)

from ..conftest import all_words


class TestBehaviorFunctions:
    def test_orbit(self):
        assert states_closure({1: 2, 2: 3}, 1) == [1, 2, 3]
        assert states_closure({1: 1}, 1) == [1]

    def test_first_states_match_trace(self):
        automaton = odd_ones_query_automaton().automaton
        for word in all_words(["0", "1"], 6):
            firsts = first_states(automaton, word)
            trace = automaton.run(word)
            for position in range(len(word) + 2):
                visits = [s for s, p in trace if p == position]
                expected = visits[0] if visits else None
                assert firsts[position] == expected, (word, position)

    def test_assumed_matches_trace(self):
        automaton = odd_ones_query_automaton().automaton
        for word in all_words(["0", "1"], 6):
            assumed, halting = assumed_via_behavior(automaton, word)
            trace = automaton.run(word)
            final_state, _ = trace[-1]
            assert halting == final_state, word
            for position in range(len(word) + 2):
                expected = {s for s, p in trace if p == position}
                assert assumed[position] == expected, (word, position)

    def test_behavior_function_fixed_points_are_right_moves(self):
        automaton = odd_ones_query_automaton().automaton
        word = list("0101")
        cells = automaton.cells(word)
        functions = left_behavior_functions(automaton, word)
        for index, behavior in enumerate(functions):
            for state, target in behavior.items():
                if target == state:
                    assert automaton.in_right(state, cells[index])


class TestLinearTimeEvaluation:
    """Lemma content: behavior evaluation ≡ direct simulation."""

    def test_example_3_4_agrees(self):
        qa = odd_ones_query_automaton()
        for word in all_words(["0", "1"], 7):
            assert evaluate_query_via_behavior(qa, word) == qa.evaluate(word)

    def test_remark_3_3_agrees(self):
        qa = endpoints_if_contains("ab", "a")
        for word in all_words(["a", "b"], 6):
            assert evaluate_query_via_behavior(qa, word) == qa.evaluate(word)

    @given(st.lists(st.sampled_from("01"), min_size=0, max_size=12))
    @settings(max_examples=80, deadline=None)
    def test_agreement_property(self, word):
        qa = odd_ones_query_automaton()
        assert evaluate_query_via_behavior(qa, word) == qa.evaluate(word)
