"""DFA toolkit: boolean operations, minimization, decision procedures."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.strings.dfa import (
    DFA,
    AutomatonError,
    empty_dfa,
    singleton_dfa,
    universal_dfa,
)

from ..conftest import all_words, total_dfas, words

import pytest


def even_as() -> DFA:
    return DFA.build(
        {0, 1},
        {"a", "b"},
        {(0, "a"): 1, (1, "a"): 0, (0, "b"): 0, (1, "b"): 1},
        0,
        {0},
    )


def contains_ab() -> DFA:
    return DFA.build(
        {0, 1, 2},
        {"a", "b"},
        {
            (0, "a"): 1,
            (0, "b"): 0,
            (1, "a"): 1,
            (1, "b"): 2,
            (2, "a"): 2,
            (2, "b"): 2,
        },
        0,
        {2},
    )


class TestBasics:
    def test_accepts(self):
        dfa = even_as()
        assert dfa.accepts("")
        assert dfa.accepts("aa")
        assert not dfa.accepts("a")
        assert dfa.accepts("bab" + "a")

    def test_run_states_length(self):
        dfa = even_as()
        assert len(dfa.run_states("abab")) == 5

    def test_partial_run_dies(self):
        dfa = DFA.build({0}, {"a", "b"}, {(0, "a"): 0}, 0, {0})
        assert dfa.run("ab") is None
        assert not dfa.accepts("ab")

    def test_rejects_unknown_initial(self):
        with pytest.raises(AutomatonError):
            DFA.build({0}, {"a"}, {}, 1, set())

    def test_rejects_bad_transition_symbol(self):
        with pytest.raises(AutomatonError):
            DFA.build({0}, {"a"}, {(0, "c"): 0}, 0, set())

    def test_size_measure(self):
        assert even_as().size == 2 + 2


class TestBooleanOperations:
    def test_complement(self):
        dfa = even_as().complement()
        assert dfa.accepts("a")
        assert not dfa.accepts("aa")

    def test_intersection(self):
        both = even_as().intersection(contains_ab())
        assert both.accepts("aba")  # two a's and contains the factor ab
        assert not both.accepts("ab")  # only one a
        assert not both.accepts("aa")  # no 'ab' factor

    def test_union(self):
        either = even_as().union(contains_ab())
        assert either.accepts("ab")  # contains ab
        assert either.accepts("aa")  # even a's
        assert not either.accepts("a")

    def test_complement_involution_language(self):
        dfa = contains_ab()
        double = dfa.complement().complement()
        assert double.equivalent(dfa)


class TestDecision:
    def test_empty(self):
        assert empty_dfa(["a"]).is_empty()
        assert not universal_dfa(["a"]).is_empty()

    def test_shortest_accepted(self):
        assert contains_ab().shortest_accepted() == ["a", "b"]
        assert empty_dfa(["a"]).shortest_accepted() is None

    def test_singleton(self):
        dfa = singleton_dfa(["a", "b"], "abba")
        assert dfa.accepts("abba")
        assert not dfa.accepts("abb")
        assert not dfa.accepts("abbab")

    def test_equivalence_of_minimized(self):
        dfa = contains_ab()
        assert dfa.minimized().equivalent(dfa)

    def test_disjointness(self):
        only_as = DFA.build(
            {0}, {"a", "b"}, {(0, "a"): 0}, 0, {0}
        )
        only_bs = DFA.build(
            {0, 1}, {"a", "b"}, {(0, "b"): 1, (1, "b"): 1}, 0, {1}
        )
        assert only_as.is_disjoint(only_bs)


class TestMinimization:
    def test_minimized_is_smaller_or_equal(self):
        # A deliberately redundant DFA for (a|b)*b
        dfa = DFA.build(
            {0, 1, 2, 3},
            {"a", "b"},
            {
                (0, "a"): 2,
                (0, "b"): 1,
                (1, "a"): 2,
                (1, "b"): 3,
                (2, "a"): 2,
                (2, "b"): 1,
                (3, "a"): 2,
                (3, "b"): 3,
            },
            0,
            {1, 3},
        )
        minimal = dfa.minimized()
        assert len(minimal.states) == 2
        assert minimal.equivalent(dfa)

    @given(total_dfas())
    @settings(max_examples=40, deadline=None)
    def test_minimization_preserves_language(self, dfa):
        minimal = dfa.minimized()
        for word in all_words(["a", "b"], 5):
            assert minimal.accepts(word) == dfa.accepts(word)

    @given(total_dfas(), total_dfas())
    @settings(max_examples=30, deadline=None)
    def test_product_language(self, left, right):
        both = left.intersection(right)
        either = left.union(right)
        for word in all_words(["a", "b"], 4):
            assert both.accepts(word) == (left.accepts(word) and right.accepts(word))
            assert either.accepts(word) == (left.accepts(word) or right.accepts(word))


class TestEnumeration:
    def test_words_of_length(self):
        dfa = contains_ab()
        of_two = set(dfa.words_of_length(2))
        assert of_two == {("a", "b")}

    def test_reversed_dfa(self):
        dfa = contains_ab()
        rev = dfa.reversed_dfa()
        for word in all_words(["a", "b"], 5):
            assert rev.accepts(word) == dfa.accepts(list(reversed(word)))
