"""Lemma 3.10: the Hopcroft–Ullman two-way combination."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.strings.dfa import DFA
from repro.strings.hopcroft_ullman import (
    hopcroft_ullman_gsqa,
    mirror_gsqa,
    reference_pairs,
    reversed_hopcroft_ullman_gsqa,
)

from ..conftest import all_words, random_total_dfa, total_dfas, words


def parity_dfa() -> DFA:
    return DFA.build(
        {0, 1},
        {"a", "b"},
        {(0, "a"): 1, (1, "a"): 0, (0, "b"): 0, (1, "b"): 1},
        0,
        {0},
    )


def last_symbol_dfa() -> DFA:
    states = {"x", "a", "b"}
    return DFA.build(
        states,
        {"a", "b"},
        {(s, c): c for s in states for c in "ab"},
        "x",
        {"a"},
    )


class TestHopcroftUllman:
    def test_outputs_both_state_streams(self):
        combined = hopcroft_ullman_gsqa(parity_dfa(), last_symbol_dfa())
        word = list("abba")
        assert combined.transduce(word) == reference_pairs(
            parity_dfa(), last_symbol_dfa(), word
        )

    def test_empty_and_singleton_words(self):
        combined = hopcroft_ullman_gsqa(parity_dfa(), parity_dfa())
        assert combined.transduce([]) == ()
        assert combined.transduce(["a"]) == reference_pairs(
            parity_dfa(), parity_dfa(), ["a"]
        )

    def test_exhaustive_small_words(self):
        combined = hopcroft_ullman_gsqa(parity_dfa(), last_symbol_dfa())
        for word in all_words(["a", "b"], 7):
            assert combined.transduce(word) == reference_pairs(
                parity_dfa(), last_symbol_dfa(), word
            ), word

    @given(total_dfas(max_states=3), total_dfas(max_states=3), words(max_length=9))
    @settings(max_examples=40, deadline=None)
    def test_random_dfas_property(self, forward, backward, word):
        combined = hopcroft_ullman_gsqa(forward, backward)
        assert combined.transduce(word) == reference_pairs(forward, backward, word)

    def test_deterministic_two_way_machine(self):
        """The construction yields a genuine 2DFA (disjoint L/R, halts)."""
        combined = hopcroft_ullman_gsqa(parity_dfa(), parity_dfa())
        automaton = combined.automaton
        assert not (automaton.left_moves.keys() & automaton.right_moves.keys())
        # Runs halt on every sampled input.
        for word in all_words(["a", "b"], 5):
            automaton.run(word)


class TestMirroredVariant:
    """The Theorem 5.17 workhorse: reconstruction on the backward side."""

    def test_same_outputs_as_direct(self):
        m1, m2 = parity_dfa(), last_symbol_dfa()
        direct = hopcroft_ullman_gsqa(m1, m2)
        mirrored = reversed_hopcroft_ullman_gsqa(m1, m2)
        for word in all_words(["a", "b"], 6):
            assert mirrored.transduce(word) == direct.transduce(word), word

    @given(total_dfas(max_states=3), total_dfas(max_states=3), words(max_length=8))
    @settings(max_examples=30, deadline=None)
    def test_mirrored_property(self, forward, backward, word):
        mirrored = reversed_hopcroft_ullman_gsqa(forward, backward)
        assert mirrored.transduce(word) == reference_pairs(forward, backward, word)

    def test_render_hook(self):
        m1, m2 = parity_dfa(), parity_dfa()
        rendered = hopcroft_ullman_gsqa(
            m1, m2, render=lambda p, q, letter: (letter, p + q)
        )
        word = list("ab")
        pairs = reference_pairs(m1, m2, word)
        expected = tuple(
            (letter, p + q) for letter, (p, q) in zip(word, pairs)
        )
        assert rendered.transduce(word) == expected

    def test_mirror_of_simple_copier(self):
        """mirror_gsqa literally reverses the computation."""
        from repro.strings.examples import odd_ones_gsqa

        original = odd_ones_gsqa()
        mirrored = mirror_gsqa(original)
        word = list("0110")
        expected = tuple(reversed(original.transduce(list(reversed(word)))))
        assert mirrored.transduce(word) == expected
