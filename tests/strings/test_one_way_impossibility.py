"""Remark 3.3, executable: one-way QAs cannot compute the endpoint query.

The paper: *"select the first and last symbol if the string contains the
letter σ" is not computable by a QA^string that only moves in one
direction — started on the first position it would have to decide whether
to select without having seen the input.*

We verify the claim by brute force over every one-way (left-to-right)
query automaton with up to 2 states over {a, b}: none of them computes
the query on a small word battery, while the two-way automaton of
``endpoints_if_contains`` does.  (The paper's argument applies to any
state count; the exhaustive search gives the small cases absolute
certainty and the general case a sanity anchor.)
"""

import itertools

import pytest

from repro.strings.examples import endpoints_if_contains
from repro.strings.twoway import (
    LEFT_MARKER,
    NonTerminatingRunError,
    StringQueryAutomaton,
    TwoWayDFA,
)

ALPHABET = ("a", "b")
WORDS = [
    list(w)
    for n in range(0, 4)
    for w in itertools.product(ALPHABET, repeat=n)
]


def reference(word):
    """First and last position iff the word contains an 'a'."""
    if "a" in word:
        return frozenset({1, len(word)})
    return frozenset()


def one_way_automata(num_states: int):
    """Every total-ish one-way QA with the given number of states.

    Right moves only; each (state, cell) either moves right into some
    state or halts.  All F and λ choices are enumerated.
    """
    states = list(range(num_states))
    cells = [LEFT_MARKER, *ALPHABET]
    slots = [(state, cell) for state in states for cell in cells]
    for targets in itertools.product([None, *states], repeat=len(slots)):
        right_moves = {
            slot: target
            for slot, target in zip(slots, targets)
            if target is not None
        }
        # The machine must at least leave ⊳, else it reads nothing.
        if (0, LEFT_MARKER) not in right_moves:
            continue
        automaton = TwoWayDFA.build(
            states, ALPHABET, 0, states, {}, right_moves
        )
        selection_pairs = [
            (state, symbol) for state in states for symbol in ALPHABET
        ]
        for mask in range(2 ** len(selection_pairs)):
            selecting = frozenset(
                pair
                for index, pair in enumerate(selection_pairs)
                if mask >> index & 1
            )
            for accepting_mask in range(1, 2 ** num_states):
                accepting = frozenset(
                    state
                    for state in states
                    if accepting_mask >> state & 1
                )
                yield TwoWayDFA.build(
                    states, ALPHABET, 0, accepting, {}, right_moves
                ), selecting


def computes_reference(automaton, selecting) -> bool:
    qa = StringQueryAutomaton(automaton, selecting)
    for word in WORDS:
        try:
            if qa.evaluate(word) != reference(word):
                return False
        except NonTerminatingRunError:  # pragma: no cover - one-way halts
            return False
    return True


class TestOneWayImpossibility:
    @pytest.mark.parametrize("num_states", [1, 2])
    def test_no_small_one_way_qa_computes_the_query(self, num_states):
        assert not any(
            computes_reference(automaton, selecting)
            for automaton, selecting in one_way_automata(num_states)
        )

    def test_the_two_way_automaton_does(self):
        qa = endpoints_if_contains(ALPHABET, "a")
        for word in WORDS:
            assert qa.evaluate(word) == reference(word), word

    def test_sanity_search_finds_easier_queries(self):
        """The search space is rich enough to find computable queries —
        e.g. 'select every a' — so the negative result above is meaningful."""
        def select_every_a(word):
            return frozenset(
                i for i, symbol in enumerate(word, start=1) if symbol == "a"
            )

        found = False
        for automaton, selecting in one_way_automata(1):
            qa = StringQueryAutomaton(automaton, selecting)
            try:
                if all(qa.evaluate(w) == select_every_a(w) for w in WORDS):
                    found = True
                    break
            except NonTerminatingRunError:  # pragma: no cover
                continue
        assert found
