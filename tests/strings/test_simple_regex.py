"""Slender languages (Shallit normal form) for down transitions (§5.2)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.strings.simple_regex import (
    Branch,
    SimpleRegex,
    SlendernessError,
    constant_sequence,
    fixed_sequences,
    pattern,
)


class TestBranch:
    def test_string_of_length(self):
        branch = Branch(("x",), ("y", "z"), ("w",))
        assert branch.string_of_length(2) == ("x", "w")
        assert branch.string_of_length(4) == ("x", "y", "z", "w")
        assert branch.string_of_length(3) is None

    def test_no_pump(self):
        branch = Branch(("a", "b"), (), ())
        assert branch.string_of_length(2) == ("a", "b")
        assert branch.string_of_length(3) is None


class TestSimpleRegex:
    def test_constant_sequence(self):
        regex = constant_sequence("s")
        assert regex.string_of_length(3) == ("s", "s", "s")
        assert regex.string_of_length(1) == ("s",)
        assert regex.string_of_length(0) is None

    def test_membership(self):
        regex = constant_sequence("s")
        assert ["s", "s"] in regex
        assert ["s", "t"] not in regex

    def test_fixed_sequences(self):
        regex = fixed_sequences([("a",), ("a", "b"), ("a", "b", "c")])
        assert regex.string_of_length(2) == ("a", "b")
        assert regex.string_of_length(4) is None

    def test_one_string_per_length_enforced(self):
        with pytest.raises(SlendernessError):
            fixed_sequences([("a", "b"), ("b", "a")])

    def test_overlapping_pumps_rejected(self):
        with pytest.raises(SlendernessError):
            SimpleRegex(
                [Branch((), ("a",), ()), Branch((), ("b",), ())]
            )

    def test_compatible_union_allowed(self):
        # Same strings from both branches: allowed (not two *distinct* ones).
        regex = SimpleRegex([Branch(("a",), (), ()), Branch(("a",), (), ())])
        assert regex.string_of_length(1) == ("a",)

    def test_disjoint_lengths_allowed(self):
        # Even lengths all-a, odd lengths all-b.
        regex = SimpleRegex(
            [
                Branch(("a", "a"), ("a", "a"), ()),
                Branch(("b",), ("b", "b"), ()),
            ]
        )
        assert regex.string_of_length(2) == ("a", "a")
        assert regex.string_of_length(3) == ("b", "b", "b")

    def test_realized_lengths(self):
        regex = pattern(("x",), ("y",), ("z",))
        assert list(regex.realized_lengths(5)) == [2, 3, 4, 5]

    @given(st.integers(min_value=0, max_value=30))
    @settings(max_examples=30, deadline=None)
    def test_slender_invariant(self, length):
        """At most one string per length, by construction."""
        regex = SimpleRegex(
            [
                Branch(("a",), ("b", "c"), ("d",)),
                Branch(("e", "e", "e"), ("f", "f"), ()),
            ]
        )
        first = regex.string_of_length(length)
        if first is not None:
            assert len(first) == length
            # Membership agrees with lookup.
            assert list(first) in regex
