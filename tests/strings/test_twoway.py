"""Two-way DFAs, string query automata, GSQAs (Definitions 3.1–3.5)."""

import pytest

from repro.strings.dfa import AutomatonError
from repro.strings.examples import (
    endpoints_if_contains,
    odd_ones_gsqa,
    odd_ones_query_automaton,
    sweep_right_dfa_as_qa,
)
from repro.strings.twoway import (
    LEFT_MARKER,
    NonTerminatingRunError,
    RIGHT_MARKER,
    StringQueryAutomaton,
    TwoWayDFA,
)

from ..conftest import all_words


class TestTwoWayDFA:
    def test_paper_run_example_3_4(self):
        """The run on ⊳0110⊲ from Example 3.4, in our 0-based marking."""
        automaton = odd_ones_query_automaton().automaton
        trace = automaton.run(list("0110"))
        # Paper: (s0,1)...(s0,6)(s1,5)(s2,4)(s1,3)(s2,2)(s1,1) with 1-based
        # marked positions; ours are 0-based, so shift by one.
        expected = [
            ("s0", 0), ("s0", 1), ("s0", 2), ("s0", 3), ("s0", 4), ("s0", 5),
            ("s1", 4), ("s2", 3), ("s1", 2), ("s2", 1), ("s1", 0),
        ]
        assert trace == expected

    def test_moving_left_from_left_marker_rejected(self):
        with pytest.raises(AutomatonError):
            TwoWayDFA.build(
                {0}, {"a"}, 0, set(), {(0, LEFT_MARKER): 0}, {}
            )

    def test_moving_right_from_right_marker_rejected(self):
        with pytest.raises(AutomatonError):
            TwoWayDFA.build(
                {0}, {"a"}, 0, set(), {}, {(0, RIGHT_MARKER): 0}
            )

    def test_left_right_overlap_rejected(self):
        with pytest.raises(AutomatonError):
            TwoWayDFA.build(
                {0}, {"a"}, 0, set(), {(0, "a"): 0}, {(0, "a"): 0}
            )

    def test_nontermination_detected(self):
        # Bounce between two adjacent positions forever.
        automaton = TwoWayDFA.build(
            {0, 1},
            {"a"},
            0,
            set(),
            {(1, "a"): 0, (1, RIGHT_MARKER): 0},
            {(0, LEFT_MARKER): 0, (0, "a"): 1},
        )
        with pytest.raises(NonTerminatingRunError):
            automaton.run(["a", "a"])

    def test_assumed_states_match_trace(self):
        automaton = odd_ones_query_automaton().automaton
        word = list("010")
        assumed = automaton.assumed_states(word)
        trace = automaton.run(word)
        for position, bucket in enumerate(assumed):
            expected = {state for state, p in trace if p == position}
            assert bucket == expected


class TestStringQueryAutomaton:
    def test_example_3_4(self):
        qa = odd_ones_query_automaton()
        assert qa.evaluate(list("0110")) == frozenset({2})
        assert qa.evaluate(list("1111")) == frozenset({2, 4})
        assert qa.evaluate(list("0000")) == frozenset()
        assert qa.evaluate([]) == frozenset()

    def test_selection_requires_accepting_run(self):
        base = odd_ones_query_automaton()
        # Same machine with empty F: nothing is ever selected.
        rejecting = StringQueryAutomaton(
            TwoWayDFA(
                base.automaton.states,
                base.automaton.alphabet,
                base.automaton.initial,
                frozenset(),
                base.automaton.left_moves,
                base.automaton.right_moves,
            ),
            base.selecting,
        )
        assert rejecting.evaluate(list("11")) == frozenset()

    def test_remark_3_3_two_wayness(self):
        qa = endpoints_if_contains("ab", "a")
        assert qa.evaluate(list("bab")) == frozenset({1, 3})
        assert qa.evaluate(list("a")) == frozenset({1})
        assert qa.evaluate(list("bbb")) == frozenset()

    def test_one_way_baseline(self):
        qa = sweep_right_dfa_as_qa("ab", ["a"])
        assert qa.evaluate(list("aba")) == frozenset({1, 3})


class TestGSQA:
    def test_example_3_6(self):
        gsqa = odd_ones_gsqa()
        assert "".join(gsqa.transduce(list("0110"))) == "0*10"
        assert "".join(gsqa.transduce(list("111"))) == "*1*"
        assert gsqa.transduce([]) == ()

    def test_every_position_gets_one_output(self):
        gsqa = odd_ones_gsqa()
        for word in all_words(["0", "1"], 6):
            outputs = gsqa.transduce(word)
            assert len(outputs) == len(word)
