"""Differential tests: the fast string path ≡ the naive simulators.

The Lemma 3.10 construction over random DFA pairs yields two-way machines
that halt on every input by construction, so the fast path must agree
with direct simulation *exactly* — no error tolerance.  Raw random 2DFAs
may cycle; there the contract is "both sides raise, or both agree".
"""

import random

import pytest

from repro.perf import fast_accepts, fast_evaluate, fast_final_state, fast_transduce
from repro.strings.behavior import BehaviorError
from repro.strings.dfa import AutomatonError
from repro.strings.examples import (
    endpoints_if_contains,
    multi_sweep_query_automaton,
    odd_ones_gsqa,
    odd_ones_query_automaton,
)
from repro.strings.hopcroft_ullman import hopcroft_ullman_gsqa, reference_pairs
from repro.strings.twoway import (
    LEFT_MARKER,
    RIGHT_MARKER,
    NonTerminatingRunError,
    StringQueryAutomaton,
    TwoWayDFA,
)

from ..conftest import all_words, random_total_dfa

ALPHABET = ("a", "b")


def _random_word(rng, alphabet=ALPHABET, max_length=10):
    return [rng.choice(alphabet) for _ in range(rng.randrange(max_length + 1))]


def _random_hu_gsqa(rng):
    forward = random_total_dfa(rng, ALPHABET)
    backward = random_total_dfa(rng, ALPHABET)
    return hopcroft_ullman_gsqa(forward, backward), forward, backward


class TestStringQueryAutomatonDifferential:
    def test_random_halting_machines_agree(self):
        """≥200 random (2DFA, selection, word) cases, fast ≡ naive."""
        rng = random.Random(0xA1)
        for case in range(220):
            gsqa, _f, _b = _random_hu_gsqa(rng)
            automaton = gsqa.automaton
            states = sorted(automaton.states, key=repr)
            selecting = frozenset(
                (state, symbol)
                for state in states
                for symbol in ALPHABET
                if rng.random() < 0.25
            )
            qa = StringQueryAutomaton(automaton, selecting)
            word = _random_word(rng)
            assert fast_evaluate(qa, word) == qa.evaluate(word), (case, word)

    def test_examples_exhaustively(self):
        for qa, alphabet in [
            (odd_ones_query_automaton(), "01"),
            (endpoints_if_contains("ab", "a"), "ab"),
            (multi_sweep_query_automaton(3), "01"),
        ]:
            for word in all_words(list(alphabet), 6):
                assert fast_evaluate(qa, word) == qa.evaluate(word), word

    def test_multi_sweep_cost_is_sweep_count_dependent_only_for_naive(self):
        """The workload machine really does O(passes·n) naive head moves."""
        qa = multi_sweep_query_automaton(5)
        word = "01" * 20
        trace = qa.automaton.run(word)
        assert len(trace) > 5 * len(word)
        assert fast_evaluate(qa, word) == qa.evaluate(word)

    def test_accepts_and_final_state_agree(self):
        rng = random.Random(0xA2)
        for _ in range(60):
            gsqa, _f, _b = _random_hu_gsqa(rng)
            word = _random_word(rng)
            state, _pos = gsqa.automaton.final_configuration(word)
            assert fast_final_state(gsqa.automaton, word) == state
            assert fast_accepts(gsqa.automaton, word) == gsqa.automaton.accepts(word)


class TestGSQATransductionDifferential:
    def test_random_halting_machines_agree(self):
        """≥200 random Lemma 3.10 machines: fast ≡ naive ≡ two-pass oracle."""
        rng = random.Random(0xB1)
        for case in range(220):
            gsqa, forward, backward = _random_hu_gsqa(rng)
            word = _random_word(rng)
            expected = gsqa.transduce(word)
            assert fast_transduce(gsqa, word) == expected, (case, word)
            assert expected == reference_pairs(forward, backward, word)

    def test_example_3_6_exhaustively(self):
        gsqa = odd_ones_gsqa()
        for word in all_words(["0", "1"], 6):
            assert fast_transduce(gsqa, word) == gsqa.transduce(word)

    def test_missing_output_raises_on_both_paths(self):
        gsqa, _f, _b = _random_hu_gsqa(random.Random(0xB2))
        broken = type(gsqa)(gsqa.automaton, {}, gsqa.gamma)
        with pytest.raises(AutomatonError):
            broken.transduce(["a", "b"])
        with pytest.raises(AutomatonError):
            fast_transduce(broken, ["a", "b"])


def _random_raw_2dfa(rng, alphabet=ALPHABET, max_states=3):
    n = rng.randint(1, max_states)
    states = list(range(n))
    left_moves = {}
    right_moves = {}
    for state in states:
        for cell in [*alphabet, LEFT_MARKER, RIGHT_MARKER]:
            roll = rng.random()
            if cell != RIGHT_MARKER and roll < 0.45:
                right_moves[(state, cell)] = rng.randrange(n)
            elif cell != LEFT_MARKER and roll < 0.8:
                left_moves[(state, cell)] = rng.randrange(n)
    accepting = {state for state in states if rng.random() < 0.5}
    return TwoWayDFA.build(states, alphabet, 0, accepting, left_moves, right_moves)


class TestRawRandomTwoWayDFAs:
    def test_agree_whenever_simulation_halts(self):
        """Raw machines may break the paper's halting convention; the
        contract mirrors :mod:`repro.strings.behavior`: on any input where
        the *simulated run* halts, the fast path either agrees exactly or
        aborts loudly (never a silently wrong answer).  Cycling inputs are
        outside the convention for both evaluators."""
        rng = random.Random(0xC1)
        agreements = aborts = 0
        for case in range(250):
            automaton = _random_raw_2dfa(rng)
            selecting = frozenset(
                (state, symbol)
                for state in automaton.states
                for symbol in ALPHABET
                if rng.random() < 0.3
            )
            qa = StringQueryAutomaton(automaton, selecting)
            word = _random_word(rng, max_length=6)
            try:
                expected = qa.evaluate(word)
            except NonTerminatingRunError:
                continue  # outside the halting convention
            try:
                observed = fast_evaluate(qa, word)
            except (NonTerminatingRunError, BehaviorError):
                # The behavior analysis explores states the concrete run
                # never enters; a cycle there aborts the fast path even
                # though simulation halts.  That is the only divergence
                # allowed.
                aborts += 1
                continue
            assert observed == expected, (case, word)
            agreements += 1
        assert agreements >= 100  # the tolerance above must stay exceptional


class TestStepBudgets:
    def test_budget_overflow_reports_visited_count(self):
        qa = multi_sweep_query_automaton(4)
        word = "01" * 10
        with pytest.raises(NonTerminatingRunError, match=r"visiting \d+ configurations"):
            qa.automaton.run(word, max_steps=5)

    def test_budget_large_enough_is_harmless(self):
        qa = multi_sweep_query_automaton(2)
        word = "0110"
        bounded = qa.automaton.run(word, max_steps=10_000)
        assert bounded == qa.automaton.run(word)

    def test_cycle_detection_reports_visited_count(self):
        automaton = TwoWayDFA.build(
            {0},
            {"a"},
            0,
            set(),
            {(0, RIGHT_MARKER): 0, (0, "a"): 0},
            {(0, LEFT_MARKER): 0},
        )
        with pytest.raises(NonTerminatingRunError, match=r"\d+ configurations"):
            automaton.run(["a", "a"])


class TestSequenceInputRegression:
    """Satellite: str and list inputs are interchangeable everywhere."""

    def test_query_automaton_accepts_str(self):
        qa = odd_ones_query_automaton()
        for text in ["", "1", "0110", "111101"]:
            as_list = list(text)
            assert qa.evaluate(text) == qa.evaluate(as_list)
            assert fast_evaluate(qa, text) == qa.evaluate(as_list)

    def test_gsqa_accepts_str(self):
        gsqa = odd_ones_gsqa()
        for text in ["", "1", "0110", "111101"]:
            assert gsqa.transduce(text) == gsqa.transduce(list(text))
            assert fast_transduce(gsqa, text) == gsqa.transduce(list(text))

    def test_run_accepts_str(self):
        qa = odd_ones_query_automaton()
        assert qa.automaton.run("01") == qa.automaton.run(["0", "1"])
