"""Parallel sharded execution vs. serial: 200+ seeded random corpora.

The contract under test: for every corpus, ``jobs=N`` output is
byte-identical (``repr`` equality) to ``jobs=1`` output and to the naive
per-document ``select``/``evaluate`` — including empty corpora,
single-document corpora, and corpus sizes straddling the chunk
boundaries of the worker count.

Worker count comes from ``REPRO_PARALLEL_JOBS`` (default 2; CI pins 2).
One executor per workload family is shared across all its corpora, so
the suite exercises exactly the serving shape the executor is for: one
query, one warm pool, many corpora.
"""

import os
import random

import pytest

from repro import obs
from repro.core.patterns import compile_pattern
from repro.core.pipeline import Corpus, Document, batch_select
from repro.perf.parallel import ParallelExecutor
from repro.perf.shard import estimate_cost, iter_chunks
from repro.strings.examples import odd_ones_query_automaton
from repro.trees.generators import random_tree, random_unranked_circuit
from repro.unranked.examples import circuit_query_automaton

JOBS = int(os.environ.get("REPRO_PARALLEL_JOBS", "2"))

TREE_LABELS = ("a", "b", "c")


@pytest.fixture(scope="module")
def marked_executor():
    """A warm pool for the compiled ``//a[has(b)]`` pattern query."""
    query = compile_pattern("//a[has(b)]", TREE_LABELS)
    with ParallelExecutor(query, jobs=JOBS) as executor:
        yield executor, query


@pytest.fixture(scope="module")
def circuit_executor():
    """A warm pool for the Example 5.9 circuit QA^u."""
    qa = circuit_query_automaton()
    with ParallelExecutor(qa, jobs=JOBS) as executor:
        yield executor, qa


@pytest.fixture(scope="module")
def string_executor():
    """A warm pool for the odd-ones string QA."""
    qa = odd_ones_query_automaton()
    with ParallelExecutor(qa, jobs=JOBS) as executor:
        yield executor, qa


def _tree_corpus(seed: int) -> list:
    rng = random.Random(0xC0 + seed)
    return [
        random_tree(rng.randrange(1, 28), list(TREE_LABELS), seed_or_rng=rng)
        for _ in range(rng.randrange(9))
    ]


def _circuit_corpus(seed: int) -> list:
    rng = random.Random(0x5EED + seed)
    return [
        random_unranked_circuit(
            rng.randrange(1, 4), max_arity=3, seed_or_rng=rng
        )
        for _ in range(rng.randrange(8))
    ]


def _word_corpus(seed: int) -> list:
    rng = random.Random(0xABC + seed)
    return [
        "".join(rng.choice("01") for _ in range(rng.randrange(16)))
        for _ in range(rng.randrange(10))
    ]


class TestSeededCorpora:
    """80 + 70 + 60 = 210 seeded corpora, three workload families."""

    def test_marked_pattern_query(self, marked_executor):
        executor, query = marked_executor
        for seed in range(80):
            corpus = _tree_corpus(seed)
            parallel = [sorted(r) for r in executor.map(corpus)]
            serial = [sorted(r) for r in executor._map_serial(corpus)]
            naive = [sorted(query.evaluate(tree)) for tree in corpus]
            assert repr(parallel) == repr(serial) == repr(naive), f"seed {seed}"

    def test_unranked_circuit_query(self, circuit_executor):
        executor, qa = circuit_executor
        for seed in range(70):
            corpus = _circuit_corpus(seed)
            parallel = [sorted(r) for r in executor.map(corpus)]
            naive = [sorted(qa.evaluate(tree)) for tree in corpus]
            assert repr(parallel) == repr(naive), f"seed {seed}"

    def test_string_query(self, string_executor):
        executor, qa = string_executor
        for seed in range(60):
            corpus = _word_corpus(seed)
            parallel = [sorted(r) for r in executor.map(corpus)]
            naive = [sorted(qa.evaluate(word)) for word in corpus]
            assert repr(parallel) == repr(naive), f"seed {seed}"


class TestBoundaries:
    """Empty, single-document, and chunk-boundary corpus sizes."""

    def test_empty_corpus(self, marked_executor):
        executor, _query = marked_executor
        assert executor.map([]) == []

    def test_single_document(self, marked_executor):
        executor, query = marked_executor
        tree = random_tree(13, list(TREE_LABELS), seed_or_rng=7)
        assert executor.map([tree]) == [query.evaluate(tree)]

    @pytest.mark.parametrize(
        "count",
        sorted({0, 1, JOBS - 1, JOBS, JOBS + 1, 2 * JOBS, 2 * JOBS + 1}),
    )
    def test_chunk_boundary_sizes(self, marked_executor, count):
        executor, query = marked_executor
        corpus = [
            random_tree(6 + i, list(TREE_LABELS), seed_or_rng=1000 + i)
            for i in range(count)
        ]
        parallel = [sorted(r) for r in executor.map(corpus)]
        naive = [sorted(query.evaluate(tree)) for tree in corpus]
        assert repr(parallel) == repr(naive)


class TestPipelineParallel:
    """batch_select / Corpus.select with jobs= against their serial twins."""

    def _documents(self, seed: int) -> list[Document]:
        rng = random.Random(seed)
        texts = []
        for _ in range(rng.randrange(1, 6)):
            books = "".join(
                f"<book><author>A{rng.randrange(4)}</author>"
                f"<title>T</title></book>"
                for _ in range(rng.randrange(4))
            )
            texts.append(f"<bibliography>{books}</bibliography>")
        return [Document.from_text(text) for text in texts]

    def test_batch_select_jobs(self):
        for seed in range(4):
            documents = self._documents(seed)
            parallel = batch_select(documents, "//author", jobs=JOBS)
            serial = batch_select(documents, "//author")
            naive = [document.select("//author") for document in documents]
            assert repr(parallel) == repr(serial) == repr(naive)

    def test_corpus_select_jobs(self):
        documents = self._documents(99)
        corpus = Corpus(documents)
        parallel = corpus.select("//author", jobs=JOBS)
        serial = corpus.select("//author")
        assert repr(parallel) == repr(serial)

    def test_document_batch_select_staticmethod(self):
        documents = self._documents(3)
        assert Document.batch_select(documents, "//author", jobs=JOBS) == (
            batch_select(documents, "//author")
        )

    def test_streaming_corpus_matches_materialized(self, tmp_path):
        import io

        inner = "".join(
            f"<bib><book><author>A{i}</author><title>T{i}</title></book></bib>"
            for i in range(7)
        )
        source = io.BytesIO(f"<corpus>{inner}</corpus>".encode())
        streamed = Corpus.stream(source)
        alphabet = ("#text", "author", "bib", "book", "title")
        parallel = streamed.select("//author", jobs=JOBS, alphabet=alphabet)
        materialized = Corpus.from_texts(
            f"<bib><book><author>A{i}</author><title>T{i}</title></book></bib>"
            for i in range(7)
        )
        assert repr(parallel) == repr(materialized.select("//author"))

    def test_streaming_pattern_needs_alphabet(self):
        import io

        corpus = Corpus.stream(io.BytesIO(b"<corpus><d/></corpus>"))
        with pytest.raises(ValueError, match="alphabet"):
            corpus.select("//d", jobs=1)


class TestStatsParity:
    """Merged worker counters equal the serial run's work counters.

    Cache-locality counters (``trees.type_hits``/``_misses``,
    ``engine.registry_*``) legitimately differ per worker; the *work*
    counters — evaluations and node visits — are invariant, as is the
    per-evaluation invariant ``type_hits + type_misses == trees.nodes``.
    """

    WORK = ("trees.evaluations", "trees.nodes")

    def test_parallel_counters_match_serial(self, marked_executor):
        executor, query = marked_executor
        corpus = _tree_corpus(17) or _tree_corpus(19)
        with obs.collecting() as parallel_stats:
            executor.map(corpus)
        with ParallelExecutor(query, jobs=1) as serial:
            with obs.collecting() as serial_stats:
                serial.map(corpus)
        for name in self.WORK:
            assert parallel_stats.counter(name) == serial_stats.counter(name)
        for stats in (parallel_stats, serial_stats):
            assert (
                stats.counter("trees.type_hits")
                + stats.counter("trees.type_misses")
                == stats.counter("trees.nodes")
            )

    def test_parallel_counters_present(self, marked_executor):
        executor, _query = marked_executor
        corpus = _tree_corpus(23) or _tree_corpus(29)
        with obs.collecting() as stats:
            executor.map(corpus)
        assert stats.counter("parallel.chunks") >= 1
        assert stats.counter("parallel.workers") >= 1
        assert stats.counter("parallel.items") == len(corpus)
        assert stats.counter("parallel.merge_wait_ns") >= 0
        assert stats.gauges["parallel.worker_items_max"] >= 1

    def test_serial_path_emits_no_parallel_counters(self, marked_executor):
        _executor, query = marked_executor
        corpus = _tree_corpus(31) or _tree_corpus(37)
        with ParallelExecutor(query, jobs=1) as serial:
            with obs.collecting() as stats:
                serial.map(corpus)
        assert not any(name.startswith("parallel.") for name in stats.counters)


class TestShardPlanning:
    """The chunk planner: contiguity, order, cost accounting."""

    def test_chunks_partition_in_order(self):
        items = [random_tree(3 + i, ["a"], seed_or_rng=i) for i in range(17)]
        chunks = list(iter_chunks(items, target_cost=20))
        flattened = [item for _start, chunk, _cost in chunks for item in chunk]
        assert flattened == items
        starts = [start for start, _chunk, _cost in chunks]
        sizes = [len(chunk) for _start, chunk, _cost in chunks]
        expected_starts = [sum(sizes[:i]) for i in range(len(sizes))]
        assert starts == expected_starts

    def test_chunk_costs_are_item_cost_sums(self):
        items = ["x" * (i + 1) for i in range(9)]
        for _start, chunk, cost in iter_chunks(items, target_cost=7):
            assert cost == sum(estimate_cost(item) for item in chunk)

    def test_max_items_cap(self):
        chunks = list(iter_chunks(["x"] * 100, target_cost=10**9, max_items=8))
        assert all(len(chunk) <= 8 for _s, chunk, _c in chunks)

    def test_estimate_cost_families(self):
        tree = random_tree(12, ["a"], seed_or_rng=0)
        assert estimate_cost(tree) == 12
        assert estimate_cost(Document.from_text("<a><b/></a>")) == 2
        assert estimate_cost("hello") == 5
        assert estimate_cost(object()) == 1
