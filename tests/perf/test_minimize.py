"""Differential tests for the minimization engines.

Hopcroft vs the Moore oracle on seeded random DFAs, and the DBTA^u
congruence-refinement minimizer against the naive compilation pipeline
(language equivalence via symmetric-difference emptiness, query
equivalence via the marked-query evaluators).
"""

import random

import pytest

from repro import obs
from repro.logic.compile_trees import compile_tree_query, mark
from repro.logic.syntax import And, Descendant, Edge, Exists, Label, Not, Or, Var
from repro.perf.minimize import (
    dbta_equivalent,
    hopcroft_minimized,
    minimize_dbta,
    moore_minimized,
)
from repro.strings.dfa import AutomatonError, DFA
from repro.trees.tree import Tree
from repro.unranked.dbta import (
    brute_force_marked_query,
    evaluate_marked_query,
)


def random_dfa(rng: random.Random) -> DFA:
    """A random (possibly partial) DFA over a small alphabet."""
    size = rng.randint(1, 14)
    symbols = ["a", "b", "c"][: rng.randint(1, 3)]
    states = list(range(size))
    transitions = {}
    for state in states:
        for symbol in symbols:
            if rng.random() < 0.85:
                transitions[(state, symbol)] = rng.choice(states)
    accepting = {state for state in states if rng.random() < 0.4}
    return DFA.build(states, symbols, transitions, 0, accepting)


@pytest.mark.parametrize("seed", range(60))
def test_hopcroft_matches_moore(seed):
    """Both engines yield equivalent automata of identical size."""
    dfa = random_dfa(random.Random(seed))
    fast = hopcroft_minimized(dfa)
    oracle = moore_minimized(dfa)
    assert fast.equivalent(dfa)
    assert oracle.equivalent(dfa)
    assert len(fast.states) == len(oracle.states)


@pytest.mark.parametrize("seed", range(20))
def test_hopcroft_idempotent(seed):
    dfa = random_dfa(random.Random(1000 + seed))
    once = hopcroft_minimized(dfa)
    twice = hopcroft_minimized(once)
    assert len(twice.states) == len(once.states)


def test_minimized_engine_parameter():
    """``DFA.minimized`` dispatches on engine and rejects unknown ones."""
    dfa = random_dfa(random.Random(5))
    assert dfa.minimized().equivalent(dfa.minimized(engine="moore"))
    with pytest.raises(AutomatonError):
        dfa.minimized(engine="bogus")


def test_minimize_counters():
    """A lossy minimization records a positive states_before − states_after."""
    dfa = DFA.build(
        {0, 1, 2, 3},
        {"a"},
        {(0, "a"): 1, (1, "a"): 2, (2, "a"): 3, (3, "a"): 0},
        0,
        {0, 1, 2, 3},
    )
    with obs.collecting() as stats:
        result = dfa.minimized()
    assert len(result.states) == 1
    counters = stats.report()["counters"]
    assert counters["minimize.calls"] == 1
    assert counters["minimize.states_before"] > counters["minimize.states_after"]


# ----------------------------------------------------------------------
# DBTA^u minimization
# ----------------------------------------------------------------------

X, Y = Var("x"), Var("y")

QUERY_FORMULAS = [
    Label(X, "a"),
    And(Label(X, "a"), Not(Exists(Y, And(Descendant(X, Y), Label(Y, "b"))))),
    Or(Label(X, "b"), Exists(Y, And(Edge(Y, X), Label(Y, "a")))),
    Exists(Y, Descendant(Y, X)),
    Not(Exists(Y, Edge(X, Y))),
]

TREE_TEXTS = [
    "a",
    "b",
    "a(b)",
    "a(a, b)",
    "b(a(a), b)",
    "a(b(a, b), a(a))",
    "b(a(b(a), a), b, a)",
]


@pytest.mark.parametrize("index", range(len(QUERY_FORMULAS)))
def test_minimize_dbta_language_equivalent(index):
    """The minimized DBTA accepts exactly the same marked trees."""
    naive = compile_tree_query(QUERY_FORMULAS[index], X, ["a", "b"], engine="naive")
    minimized = minimize_dbta(naive)
    assert dbta_equivalent(naive, minimized)
    assert len(minimized.states) <= len(naive.states)
    horizontal_before = sum(len(c.dfa.states) for c in naive.classifiers.values())
    horizontal_after = sum(
        len(c.dfa.states) for c in minimized.classifiers.values()
    )
    assert horizontal_after <= horizontal_before


@pytest.mark.parametrize("index", range(len(QUERY_FORMULAS)))
def test_minimize_dbta_query_equivalent(index):
    """Two-pass evaluation on the minimized automaton matches brute force."""
    naive = compile_tree_query(QUERY_FORMULAS[index], X, ["a", "b"], engine="naive")
    minimized = naive.minimized()
    for text in TREE_TEXTS:
        tree = Tree.parse(text)
        expected = brute_force_marked_query(naive, tree, mark)
        assert evaluate_marked_query(minimized, tree, mark) == expected, text


def test_minimize_dbta_shrinks_and_counts():
    """The compiled query DBTA really loses states, visibly in counters."""
    formula = QUERY_FORMULAS[1]
    naive = compile_tree_query(formula, X, ["a", "b"], engine="naive")
    with obs.collecting() as stats:
        minimized = minimize_dbta(naive)
    horizontal_before = sum(len(c.dfa.states) for c in naive.classifiers.values())
    horizontal_after = sum(
        len(c.dfa.states) for c in minimized.classifiers.values()
    )
    assert horizontal_after < horizontal_before
    counters = stats.report()["counters"]
    assert counters["minimize.dbta_calls"] == 1
    assert counters["minimize.states_before"] > counters["minimize.states_after"]


def test_minimize_dbta_classifiers_stay_total():
    """Quotient classifiers stay total over the minimized state set —
    the invariant ``evaluate_marked_query`` indexes on directly."""
    naive = compile_tree_query(QUERY_FORMULAS[0], X, ["a", "b"], engine="naive")
    minimized = minimize_dbta(naive)
    for classifier in minimized.classifiers.values():
        assert classifier.dfa.alphabet == minimized.states
        for state in classifier.dfa.states:
            for letter in minimized.states:
                assert (state, letter) in classifier.dfa.transitions
