"""Differential suite: the numpy kernel ≡ the table/naive engines.

Every ``engine="numpy"`` path must be *byte-identical* to its oracle —
same results on well-behaved machines, same exception types and messages
on ill-behaved ones — across ≥200 seeded random cases per family.  The
suite also proves the import-optional contract: with numpy simulated
absent, every entry point silently degrades to the default engine and
counts an ``npkernel.fallbacks`` event.
"""

import random

import pytest

from repro import obs
from repro.perf import batch_evaluate, fast_evaluate, fast_transduce
from repro.perf import npkernel
from repro.perf.strings import numpy_kernel
from repro.strings.behavior import BehaviorError
from repro.strings.dfa import AutomatonError
from repro.strings.examples import (
    endpoints_if_contains,
    multi_sweep_query_automaton,
    odd_ones_gsqa,
    odd_ones_query_automaton,
)
from repro.strings.hopcroft_ullman import hopcroft_ullman_gsqa
from repro.strings.twoway import (
    LEFT_MARKER,
    RIGHT_MARKER,
    NonTerminatingRunError,
    StringQueryAutomaton,
    TwoWayDFA,
)

from ..conftest import all_words, random_total_dfa

ALPHABET = ("a", "b")

needs_numpy = pytest.mark.skipif(
    not npkernel.available(), reason="numpy not installed"
)


def _random_word(rng, alphabet=ALPHABET, max_length=10):
    return [rng.choice(alphabet) for _ in range(rng.randrange(max_length + 1))]


def _random_hu_gsqa(rng):
    forward = random_total_dfa(rng, ALPHABET)
    backward = random_total_dfa(rng, ALPHABET)
    return hopcroft_ullman_gsqa(forward, backward)


def _random_qa(rng, automaton, rate=0.25):
    states = sorted(automaton.states, key=repr)
    selecting = frozenset(
        (state, symbol)
        for state in states
        for symbol in ALPHABET
        if rng.random() < rate
    )
    return StringQueryAutomaton(automaton, selecting)


def _random_raw_2dfa(rng, alphabet=ALPHABET, max_states=3):
    n = rng.randint(1, max_states)
    left_moves = {}
    right_moves = {}
    for state in range(n):
        for cell in [*alphabet, LEFT_MARKER, RIGHT_MARKER]:
            roll = rng.random()
            if cell != RIGHT_MARKER and roll < 0.45:
                right_moves[(state, cell)] = rng.randrange(n)
            elif cell != LEFT_MARKER and roll < 0.8:
                left_moves[(state, cell)] = rng.randrange(n)
    accepting = {state for state in range(n) if rng.random() < 0.5}
    return TwoWayDFA.build(
        list(range(n)), alphabet, 0, accepting, left_moves, right_moves
    )


def _outcome(call, *args, **kwargs):
    """(tag, value-or-error-identity) — the byte-identity comparison unit."""
    try:
        return ("ok", call(*args, **kwargs))
    except (NonTerminatingRunError, BehaviorError, AutomatonError) as exc:
        return ("err", type(exc).__name__, str(exc))


@needs_numpy
class TestQueryDifferential:
    def test_random_halting_machines_agree(self):
        """≥200 random Lemma 3.10 machines: numpy ≡ table, per word."""
        rng = random.Random(0xD1)
        for case in range(220):
            qa = _random_qa(rng, _random_hu_gsqa(rng).automaton)
            word = _random_word(rng)
            expected = fast_evaluate(qa, word)
            assert fast_evaluate(qa, word, engine="numpy") == expected, (
                case,
                word,
            )

    def test_examples_exhaustively(self):
        for qa, alphabet in [
            (odd_ones_query_automaton(), "01"),
            (endpoints_if_contains("ab", "a"), "ab"),
            (multi_sweep_query_automaton(3), "01"),
        ]:
            for word in all_words(list(alphabet), 6):
                assert fast_evaluate(qa, word, engine="numpy") == qa.evaluate(
                    word
                ), word

    def test_raw_random_machines_same_errors(self):
        """Ill-behaved 2DFAs: identical exception types AND messages."""
        rng = random.Random(0xD2)
        for case in range(250):
            qa = _random_qa(rng, _random_raw_2dfa(rng), rate=0.3)
            word = _random_word(rng, max_length=6)
            expected = _outcome(fast_evaluate, qa, word)
            observed = _outcome(fast_evaluate, qa, word, engine="numpy")
            assert observed == expected, (case, word)


@needs_numpy
class TestTransduceDifferential:
    def test_random_halting_machines_agree(self):
        rng = random.Random(0xD3)
        for case in range(220):
            gsqa = _random_hu_gsqa(rng)
            word = _random_word(rng)
            expected = fast_transduce(gsqa, word)
            assert fast_transduce(gsqa, word, engine="numpy") == expected, (
                case,
                word,
            )

    def test_example_3_6_exhaustively(self):
        gsqa = odd_ones_gsqa()
        for word in all_words(["0", "1"], 6):
            assert fast_transduce(gsqa, word, engine="numpy") == gsqa.transduce(
                word
            )

    def test_missing_output_same_message(self):
        gsqa = _random_hu_gsqa(random.Random(0xD4))
        broken = type(gsqa)(gsqa.automaton, {}, gsqa.gamma)
        word = ["a", "b"]
        expected = _outcome(fast_transduce, broken, word)
        assert expected[0] == "err"
        assert _outcome(fast_transduce, broken, word, engine="numpy") == expected


@needs_numpy
class TestBatchDifferential:
    def test_batch_evaluate_engine_numpy(self):
        """One flat ragged scan ≡ per-word dict evaluation, in order."""
        rng = random.Random(0xD5)
        qa = _random_qa(rng, _random_hu_gsqa(rng).automaton)
        words = [_random_word(rng, max_length=20) for _ in range(60)]
        assert batch_evaluate(qa, words, engine="numpy") == batch_evaluate(
            qa, words
        )

    def test_batch_transduce_engine_numpy(self):
        rng = random.Random(0xD6)
        gsqa = _random_hu_gsqa(rng)
        words = [_random_word(rng, max_length=20) for _ in range(60)]
        assert batch_evaluate(gsqa, words, engine="numpy") == batch_evaluate(
            gsqa, words
        )

    def test_empty_and_degenerate_batches(self):
        """No words, and batches made only of empty/short words."""
        qa = odd_ones_query_automaton()
        gsqa = odd_ones_gsqa()
        assert batch_evaluate(qa, [], engine="numpy") == []
        assert batch_evaluate(gsqa, [], engine="numpy") == []
        for words in (["", "", ""], ["", "1", ""]):
            assert batch_evaluate(qa, words, engine="numpy") == [
                qa.evaluate(word) for word in words
            ]
            assert batch_evaluate(gsqa, words, engine="numpy") == [
                gsqa.transduce(word) for word in words
            ]

    def test_batch_with_anomalous_words_falls_back_per_word(self):
        """A batch mixing good and poisoned words answers the good ones
        vectorized and routes only the bad ones to the dict engine."""
        rng = random.Random(0xD7)
        engine = None
        for _ in range(300):
            qa = _random_qa(rng, _random_raw_2dfa(rng), rate=0.3)
            word = _random_word(rng, max_length=6)
            expected = _outcome(fast_evaluate, qa, word)
            if expected[0] == "err":
                engine = npkernel.query_engine(qa)
                bad_word = word
                break
        assert engine is not None, "no anomalous machine found"
        good = [[], ["a"], ["b", "a"]]
        outcomes = [
            _outcome(engine.evaluate_batch, [w, bad_word]) for w in good
        ]
        for (w, outcome) in zip(good, outcomes):
            # The batch raises the bad word's error only when reached —
            # after the good word produced its (discarded) result, i.e.
            # identical to a per-word dict loop hitting bad_word second.
            assert outcome == _outcome(
                lambda: [fast_evaluate(qa, w), fast_evaluate(qa, bad_word)]
            ), w

    def test_counters(self):
        qa = odd_ones_query_automaton()
        with obs.collecting() as stats:
            batch_evaluate(qa, [["0", "1"], ["1"]], engine="numpy")
        counters = stats.report()["counters"]
        assert counters["npkernel.batches"] >= 1
        assert counters["npkernel.sweeps"] >= 2
        assert counters["batch.inputs"] == 2


@needs_numpy
class TestSequenceInputs:
    def test_str_and_list_interchangeable(self):
        qa = odd_ones_query_automaton()
        gsqa = odd_ones_gsqa()
        for text in ["", "1", "0110", "111101"]:
            assert fast_evaluate(qa, text, engine="numpy") == qa.evaluate(text)
            assert fast_transduce(gsqa, text, engine="numpy") == gsqa.transduce(
                list(text)
            )


@needs_numpy
class TestExportedPrograms:
    def test_attached_engine_matches_oracles(self):
        rng = random.Random(0xD8)
        gsqa = _random_hu_gsqa(rng)
        qa = _random_qa(rng, gsqa.automaton)
        words = [_random_word(rng, max_length=15) for _ in range(40)]

        header, body = npkernel.export_program(qa)
        attached = npkernel.AttachedStringEngine(header, body)
        for word in words:
            assert attached(word) == qa.evaluate(word), word

        header, body = npkernel.export_program(gsqa)
        attached = npkernel.AttachedStringEngine(header, body)
        for word in words:
            assert attached(word) == gsqa.transduce(word), word

    def test_unknown_symbol_falls_back_to_dict_engine(self):
        qa = odd_ones_query_automaton()
        header, body = npkernel.export_program(qa)
        attached = npkernel.AttachedStringEngine(header, body)
        word = ["0", "mystery-symbol"]
        with obs.collecting() as stats:
            outcome = _outcome(attached, word)
        assert outcome == _outcome(fast_evaluate, qa, word)
        assert stats.report()["counters"]["npkernel.word_fallbacks"] >= 1

    def test_non_string_query_is_not_exportable(self):
        assert npkernel.export_program(object()) is None


class TestImportOptionalFallback:
    """The no-numpy contract — runs in every environment (numpy absence
    is *simulated* by monkeypatching the kernel's module handle)."""

    def test_fast_evaluate_falls_back_and_counts(self, monkeypatch):
        monkeypatch.setattr(npkernel, "np", None)
        qa = odd_ones_query_automaton()
        with obs.collecting() as stats:
            result = fast_evaluate(qa, "0110", engine="numpy")
        assert result == qa.evaluate("0110")
        assert stats.report()["counters"]["npkernel.fallbacks"] >= 1

    def test_fast_transduce_falls_back(self, monkeypatch):
        monkeypatch.setattr(npkernel, "np", None)
        gsqa = odd_ones_gsqa()
        assert fast_transduce(gsqa, "01", engine="numpy") == gsqa.transduce(
            "01"
        )

    def test_batch_evaluate_falls_back(self, monkeypatch):
        monkeypatch.setattr(npkernel, "np", None)
        qa = odd_ones_query_automaton()
        words = [["0"], ["1", "1"]]
        assert batch_evaluate(qa, words, engine="numpy") == batch_evaluate(
            qa, words
        )

    def test_export_program_unavailable(self, monkeypatch):
        monkeypatch.setattr(npkernel, "np", None)
        assert npkernel.export_program(odd_ones_query_automaton()) is None

    def test_unknown_engine_rejected(self):
        qa = odd_ones_query_automaton()
        with pytest.raises(
            ValueError, match="unknown engine 'warp-drive': valid engines are"
        ):
            fast_evaluate(qa, "01", engine="warp-drive")
        with pytest.raises(ValueError):
            numpy_kernel("warp-drive")

    def test_default_engines_never_touch_numpy(self, monkeypatch):
        monkeypatch.setattr(npkernel, "np", None)
        qa = odd_ones_query_automaton()
        with obs.collecting() as stats:
            fast_evaluate(qa, "0110")
            batch_evaluate(qa, [["0"]])
        assert "npkernel.fallbacks" not in stats.report()["counters"]


@needs_numpy
class TestKernelInternals:
    def test_overflow_kills_kernel_permanently(self, monkeypatch):
        qa = multi_sweep_query_automaton(2)
        engine = npkernel.NumpyQueryEngine(qa)
        monkeypatch.setattr(npkernel, "MAX_SWEEP_STATES", 1)
        with obs.collecting() as stats:
            assert engine.evaluate("0101") == qa.evaluate("0101")
        counters = stats.report()["counters"]
        assert counters["npkernel.overflows"] == 1
        assert engine.sweep.dead
        # Dead kernels route every later word to the dict engine without
        # recounting overflows.
        with obs.collecting() as stats:
            assert engine.evaluate("11") == qa.evaluate("11")
        counters = stats.report()["counters"]
        assert "npkernel.overflows" not in counters
        assert counters["npkernel.word_fallbacks"] >= 1

    def test_prefix_compose_matches_sequential(self):
        np = npkernel.np
        rng = random.Random(0xD9)
        for _ in range(20):
            size = rng.randint(1, 6)
            count = rng.randint(1, 33)
            rows = np.array(
                [
                    [rng.randrange(size) for _ in range(size)]
                    for _ in range(count)
                ],
                dtype=np.int32,
            )
            expected = []
            state_map = list(range(size))
            for row in rows:
                state_map = [int(row[s]) for s in state_map]
                expected.append(list(state_map))
            composed = npkernel._prefix_compose(rows.copy())
            assert composed.tolist() == expected

    def test_registries_are_named_caches(self):
        providers = obs.cache_providers()
        for name in (
            "perf.np_sweeps",
            "perf.np_query_engines",
            "perf.np_transducers",
            "perf.np_packed_nfas",
        ):
            assert name in providers
            snapshot = providers[name]()
            assert set(snapshot) == {
                "size",
                "capacity",
                "hits",
                "misses",
                "evictions",
            }
