"""Differential tests: the fast tree engines ≡ the naive evaluators.

Covers both tree pipelines: QA^u evaluation through per-node behavior
functions cached by hashed subtree type, and the marked-alphabet two-pass
(Figure 5/6) evaluation through cached per-type context sweeps.
"""

import dataclasses
import random

import pytest

from repro.core.patterns import compile_pattern
from repro.perf import (
    fast_evaluate_marked,
    fast_evaluate_unranked,
    marked_engine,
)
from repro.ranked.mso_to_qa import fast_two_phase_evaluate, two_phase_evaluate
from repro.trees.generators import random_tree, random_unranked_circuit
from repro.trees.tree import Tree
from repro.unranked.dbta import evaluate_marked_query
from repro.unranked.examples import circuit_query_automaton, first_one_sqa
from repro.unranked.separation import flat_family_tree
from repro.unranked.twoway import NonTerminatingRunError, StayLimitError


class TestUnrankedQueryAutomatonDifferential:
    def test_circuit_query_on_random_circuits(self):
        """≥200 random circuit trees: fast ≡ cut-semantics simulation."""
        qa = circuit_query_automaton()
        rng = random.Random(0xD1)
        for case in range(220):
            depth = rng.randrange(0, 4)
            tree = random_unranked_circuit(
                depth, max_arity=4, seed_or_rng=rng.randrange(1 << 30)
            )
            assert fast_evaluate_unranked(qa, tree) == qa.evaluate(tree), (
                case,
                str(tree),
            )

    def test_stay_query_on_flat_family(self):
        """Stay transitions (S2DTA^u) route through the cached GSQA."""
        sqa = first_one_sqa()
        for width in range(1, 8):
            for zeros in range(width + 1):
                tree = flat_family_tree(zeros, width)
                assert fast_evaluate_unranked(sqa, tree) == sqa.evaluate(tree), str(
                    tree
                )

    def test_stay_query_on_random_flat_trees(self):
        sqa = first_one_sqa()
        rng = random.Random(0xD2)
        for _ in range(120):
            leaves = tuple(
                Tree(rng.choice("01")) for _ in range(rng.randrange(1, 7))
            )
            root = rng.choice("01")
            tree = Tree(root, leaves)
            assert fast_evaluate_unranked(sqa, tree) == sqa.evaluate(tree), str(tree)

    def test_repeated_subtrees_share_cache_entries(self):
        """Identical hashed subtree types are summarized once."""
        from repro.perf.trees import _UNRANKED_ENGINES

        qa = circuit_query_automaton()
        unit = Tree("AND", (Tree("1"), Tree("0")))
        wide = Tree("OR", tuple(unit for _ in range(30)))
        engine = _UNRANKED_ENGINES.get(qa)
        before = len(engine._behaviors)
        assert fast_evaluate_unranked(qa, wide) == qa.evaluate(wide)
        # 30 copies of `unit` intern at most a handful of new types
        # (leaf 1, leaf 0, unit, root) — not one per occurrence.
        assert len(engine._behaviors) - before <= 4


class TestMarkedTwoPassDifferential:
    def test_patterns_on_random_trees(self):
        """≥200 random trees: cached engine ≡ evaluate_marked_query."""
        labels = ("a", "b", "c")
        rng = random.Random(0xD3)
        queries = [
            compile_pattern(pattern, labels)
            for pattern in ("//a", "//b", "/a//c")
        ]
        compiled = [query.compiled() for query in queries]
        for case in range(240):
            tree = random_tree(
                rng.randrange(1, 12),
                list(labels),
                max_arity=3,
                seed_or_rng=rng.randrange(1 << 30),
            )
            query = rng.randrange(len(queries))
            expected = evaluate_marked_query(
                compiled[query], tree, lambda label, bit: (label, bit)
            )
            assert fast_evaluate_marked(compiled[query], tree) == expected, (
                case,
                str(tree),
            )
            assert queries[query].evaluate(tree) == expected

    def test_fast_two_phase_matches_figure_5(self):
        labels = ("a", "b")
        d = compile_pattern("//a", labels).compiled()
        rng = random.Random(0xD4)
        for _ in range(80):
            tree = random_tree(
                rng.randrange(1, 10),
                list(labels),
                max_arity=3,
                seed_or_rng=rng.randrange(1 << 30),
            )
            assert fast_two_phase_evaluate(d, tree) == two_phase_evaluate(d, tree)

    def test_engine_is_shared_across_calls(self):
        d = compile_pattern("//a", ("a", "b")).compiled()
        assert marked_engine(d) is marked_engine(d)


class TestUnrankedStepBudgets:
    def test_budget_overflow_reports_visited_count(self):
        qa = circuit_query_automaton()
        tree = Tree.parse("AND(OR(1, 0, 1), 1, 0)")
        with pytest.raises(
            NonTerminatingRunError, match=r"visiting \d+ configurations"
        ):
            qa.automaton.run(tree, max_steps=3)

    def test_default_budget_suffices_for_halting_machines(self):
        qa = circuit_query_automaton()
        tree = Tree.parse("AND(OR(1, 0, 1), 1, 0)")
        assert qa.automaton.run(tree, max_steps=10_000) == qa.automaton.run(tree)

    def test_stay_limit_violation_reports_counts(self):
        sqa = first_one_sqa()
        strict = dataclasses.replace(sqa.automaton, stay_limit=0)
        tree = flat_family_tree(1, 3)
        with pytest.raises(StayLimitError, match=r"0 already taken"):
            strict.run(tree)
