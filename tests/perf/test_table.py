"""Unit tests for the behavior-table algebra and the engine registries."""

import random

import pytest

from repro.perf.registry import EngineRegistry
from repro.perf.table import BehaviorTable
from repro.strings.behavior import (
    first_states,
    left_behavior_functions,
)
from repro.strings.examples import (
    multi_sweep_query_automaton,
    odd_ones_query_automaton,
)
from repro.strings.twoway import LEFT_MARKER, RIGHT_MARKER


def _fresh_table():
    return BehaviorTable(odd_ones_query_automaton().automaton)


class TestSweepMatchesReference:
    def test_functions_and_firsts(self):
        automaton = odd_ones_query_automaton().automaton
        table = BehaviorTable(automaton)
        rng = random.Random(1)
        for _ in range(50):
            word = [rng.choice("01") for _ in range(rng.randrange(10))]
            _cells, function_ids, firsts = table.sweep(word)
            reference_functions = left_behavior_functions(automaton, word)
            reference_firsts = first_states(automaton, word)
            assert [table.function(i) for i in function_ids] == reference_functions
            assert firsts == reference_firsts

    def test_interning_is_stable(self):
        table = _fresh_table()
        _c1, ids1, _f1 = table.sweep(list("0101"))
        _c2, ids2, _f2 = table.sweep(list("0101"))
        assert ids1 == ids2


class TestMonoidTables:
    def test_power_step_equals_iterated_step(self):
        table = _fresh_table()
        for symbol in "01":
            _cells, ids, _firsts = table.sweep([symbol])
            at_symbol = ids[1]  # behavior at the symbol position
            for count in range(0, 12):
                iterated = at_symbol
                for _ in range(count):
                    iterated = table.step(iterated, symbol, symbol)
                assert table.power_step(at_symbol, symbol, count) == iterated

    def test_power_step_rejects_negative_counts(self):
        table = _fresh_table()
        with pytest.raises(ValueError):
            table.power_step(table.base_id, "0", -1)

    def test_prefix_products_match_sweep(self):
        table = _fresh_table()
        rng = random.Random(2)
        for _ in range(40):
            # Run-heavy words exercise the doubling fill.
            word = []
            while len(word) < 12:
                word.extend(rng.choice("01") * rng.randrange(1, 5))
            word = word[:12]
            _cells, ids, _firsts = table.sweep(word)
            assert table.prefix_products(word) == ids

    def test_multi_sweep_machine_prefix_products(self):
        automaton = multi_sweep_query_automaton(3).automaton
        table = BehaviorTable(automaton)
        word = list("000111000")
        _cells, ids, _firsts = table.sweep(word)
        assert table.prefix_products(word) == ids


class TestRegistry:
    def test_tables_are_shared_per_automaton(self):
        automaton = odd_ones_query_automaton().automaton
        assert BehaviorTable.for_automaton(automaton) is BehaviorTable.for_automaton(
            automaton
        )

    def test_distinct_automata_get_distinct_tables(self):
        a = odd_ones_query_automaton().automaton
        b = multi_sweep_query_automaton(2).automaton
        assert BehaviorTable.for_automaton(a) is not BehaviorTable.for_automaton(b)

    def test_engine_registry_identity_and_capacity(self):
        built = []

        class Probe:
            def __init__(self, obj):
                built.append(obj)
                self.obj = obj

        registry = EngineRegistry(Probe, capacity=2)
        keys = [odd_ones_query_automaton() for _ in range(3)]
        engines = [registry.get(key) for key in keys]
        assert registry.get(keys[2]) is engines[2]  # still cached
        assert len(built) == 3
        registry.get(keys[0])  # evicted at capacity 2 → rebuilt
        assert len(built) == 4

    def test_halting_states_follow_assumed_sets(self):
        table = _fresh_table()
        word = list("011")
        cells, function_ids, firsts = table.sweep(word)
        rightmost = max(i for i, s in enumerate(firsts) if s is not None)
        assumed = table.assumed_ids(cells, function_ids, firsts, rightmost)
        automaton = table.automaton
        for i in range(rightmost + 1):
            expected = tuple(
                state
                for state in sorted(table.assumed_set(assumed[i]), key=repr)
                if automaton.move(state, cells[i]) is None
            )
            assert table.halting_states(assumed[i], cells[i]) == expected
