"""Shared-memory transport and affinity-aware defaults.

The pickle transport is the differential oracle: every corpus mapped
through ``transport="shared_memory"`` — spec-in-segment for tree queries,
dense numpy program for exportable string queries — must return results
``repr``-identical to the pickle transport and to ``jobs=1``.  Lifecycle
tests pin the segment contract (parent creates and unlinks once, workers
only attach) and ``default_jobs`` must follow CPU affinity, not raw core
count.
"""

import os
import random

import pytest

from repro import obs
from repro.core.patterns import compile_pattern
from repro.perf import npkernel
from repro.perf.parallel import (
    ParallelExecutor,
    default_jobs,
    default_transport,
    parallel_map,
)
from repro.strings.examples import odd_ones_gsqa, odd_ones_query_automaton
from repro.trees.generators import random_tree

JOBS = int(os.environ.get("REPRO_PARALLEL_JOBS", "2"))

TREE_LABELS = ("a", "b", "c")


def _word_corpus(seed, count=30):
    rng = random.Random(0xBEEF + seed)
    return [
        "".join(rng.choice("01") for _ in range(rng.randrange(16)))
        for _ in range(count)
    ]


def _tree_corpus(seed, count=8):
    rng = random.Random(0xFEED + seed)
    return [
        random_tree(rng.randrange(1, 24), list(TREE_LABELS), seed_or_rng=rng)
        for _ in range(count)
    ]


class TestDefaultJobs:
    def test_respects_sched_affinity(self, monkeypatch):
        monkeypatch.setattr(os, "sched_getaffinity", lambda pid: {0, 3, 5})
        assert default_jobs() == 3

    def test_affinity_failure_falls_back_to_cpu_counts(self, monkeypatch):
        def broken(pid):
            raise OSError("no affinity on this platform")

        monkeypatch.setattr(os, "sched_getaffinity", broken)
        if hasattr(os, "process_cpu_count"):
            monkeypatch.setattr(os, "process_cpu_count", lambda: 7)
            assert default_jobs() == 7
        else:
            monkeypatch.setattr(os, "cpu_count", lambda: 7)
            assert default_jobs() == 7

    def test_never_below_one(self, monkeypatch):
        monkeypatch.setattr(os, "sched_getaffinity", lambda pid: set())
        assert default_jobs() == 1

    def test_missing_affinity_api(self, monkeypatch):
        monkeypatch.delattr(os, "sched_getaffinity", raising=False)
        monkeypatch.delattr(os, "process_cpu_count", raising=False)
        monkeypatch.setattr(os, "cpu_count", lambda: 4)
        assert default_jobs() == 4


class TestTransportSelection:
    def test_default_is_pickle(self, monkeypatch):
        monkeypatch.delenv("REPRO_PARALLEL_TRANSPORT", raising=False)
        assert default_transport() == "pickle"

    def test_env_selects_shared_memory(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL_TRANSPORT", "shared_memory")
        assert default_transport() == "shared_memory"
        monkeypatch.setenv("REPRO_PARALLEL_TRANSPORT", "shm")
        assert default_transport() == "shared_memory"

    def test_unknown_transport_rejected(self):
        qa = odd_ones_query_automaton()
        with pytest.raises(ValueError, match="unknown transport"):
            ParallelExecutor(qa, jobs=2, transport="carrier-pigeon")

    def test_shm_alias_accepted(self):
        qa = odd_ones_query_automaton()
        with ParallelExecutor(qa, jobs=2, transport="shm") as executor:
            assert executor.transport == "shared_memory"


class TestSharedMemoryDifferential:
    def test_string_query_spec_transport(self):
        qa = odd_ones_query_automaton()
        corpus = _word_corpus(1)
        oracle = parallel_map(qa, corpus, jobs=JOBS, transport="pickle")
        with obs.collecting() as stats:
            observed = parallel_map(
                qa, corpus, jobs=JOBS, transport="shared_memory"
            )
        assert repr(observed) == repr(oracle)
        assert observed == [qa.evaluate(word) for word in corpus]
        counters = stats.report()["counters"]
        assert counters["parallel.transport_shm"] == 1
        assert "parallel.transport_pickle" not in counters

    @pytest.mark.skipif(
        not npkernel.available(), reason="numpy not installed"
    )
    def test_string_query_program_transport(self):
        """engine="numpy" + shm ships the dense exported program."""
        qa = odd_ones_query_automaton()
        corpus = _word_corpus(2)
        expected = parallel_map(qa, corpus, jobs=JOBS, transport="pickle")
        with obs.collecting() as stats:
            observed = parallel_map(
                qa,
                corpus,
                jobs=JOBS,
                transport="shared_memory",
                engine="numpy",
            )
        assert observed == expected
        counters = stats.report()["counters"]
        assert counters["parallel.shm_programs"] == 1
        gauges = stats.report()["gauges"]
        assert gauges["parallel.shm_bytes"] > 0
        assert gauges["parallel.worker_init_ns"] > 0

    @pytest.mark.skipif(
        not npkernel.available(), reason="numpy not installed"
    )
    def test_transducer_program_transport(self):
        gsqa = odd_ones_gsqa()
        corpus = _word_corpus(3)
        expected = [gsqa.transduce(word) for word in corpus]
        observed = parallel_map(
            gsqa, corpus, jobs=JOBS, transport="shared_memory", engine="numpy"
        )
        assert repr(observed) == repr(expected)

    def test_tree_query_spec_transport(self):
        """Without ``engine="numpy"`` shm carries the query spec."""
        query = compile_pattern("//a[has(b)]", TREE_LABELS)
        corpus = _tree_corpus(4)
        expected = parallel_map(query, corpus, jobs=JOBS, transport="pickle")
        with obs.collecting() as stats:
            observed = parallel_map(
                query, corpus, jobs=JOBS, transport="shared_memory"
            )
        assert repr(observed) == repr(expected)
        counters = stats.report()["counters"]
        assert counters["parallel.transport_shm"] == 1
        assert "parallel.shm_programs" not in counters

    @pytest.mark.skipif(
        not npkernel.available(), reason="numpy not installed"
    )
    def test_tree_query_program_transport(self):
        """engine="numpy" + shm ships the frozen dense tree program, so
        workers attach the classifier tables instead of rebuilding the
        engine from the spec (satellite 6: no per-chunk re-encoding)."""
        query = compile_pattern("//a[has(b)]", TREE_LABELS)
        corpus = _tree_corpus(8)
        oracle = parallel_map(query, corpus, jobs=JOBS, transport="pickle")
        expected = parallel_map(
            query, corpus, jobs=JOBS, transport="pickle", engine="numpy"
        )
        with obs.collecting() as stats:
            observed = parallel_map(
                query,
                corpus,
                jobs=JOBS,
                transport="shared_memory",
                engine="numpy",
            )
        assert repr(observed) == repr(expected)
        assert observed == oracle
        counters = stats.report()["counters"]
        assert counters["parallel.shm_programs"] == 1
        gauges = stats.report()["gauges"]
        assert gauges["parallel.shm_bytes"] > 0
        # Workers only attach buffer views: init must stay far below the
        # cost of re-encoding the corpus per chunk.
        assert 0 < gauges["parallel.worker_init_ns"] < 5_000_000_000

    def test_reused_executor_many_corpora(self):
        qa = odd_ones_query_automaton()
        with ParallelExecutor(
            qa, jobs=JOBS, transport="shared_memory", engine=(
                "numpy" if npkernel.available() else None
            )
        ) as executor:
            for seed in range(4):
                corpus = _word_corpus(10 + seed, count=12)
                expected = [qa.evaluate(word) for word in corpus]
                assert executor.map(corpus) == expected


class TestSegmentLifecycle:
    def test_close_unlinks_segment(self):
        from multiprocessing import shared_memory

        qa = odd_ones_query_automaton()
        executor = ParallelExecutor(qa, jobs=JOBS, transport="shared_memory")
        try:
            executor.map(_word_corpus(5, count=6))
            assert executor._shm is not None
            name = executor._shm.name
        finally:
            executor.close()
        assert executor._shm is None
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)

    def test_close_is_idempotent(self):
        qa = odd_ones_query_automaton()
        executor = ParallelExecutor(qa, jobs=JOBS, transport="shared_memory")
        executor.map(_word_corpus(6, count=4))
        executor.close()
        executor.close()

    def test_serial_path_never_creates_segment(self):
        qa = odd_ones_query_automaton()
        with ParallelExecutor(
            qa, jobs=1, transport="shared_memory"
        ) as executor:
            corpus = _word_corpus(7, count=5)
            assert executor.map(corpus) == [qa.evaluate(w) for w in corpus]
            assert executor._shm is None
