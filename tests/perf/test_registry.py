"""EngineRegistry: LRU/finalizer eviction and the obs snapshot contract.

Every named registry (the dict engines, the numpy kernel's sweeps and
readout engines) exposes the same snapshot shape through
``obs.register_cache``; the event counters must *survive* eviction — they
count lifetime events, not live entries — so long-running processes can
tell churn from cold caches.
"""

import gc

import pytest

from repro import obs
from repro.perf.registry import EngineRegistry
from repro.strings.examples import odd_ones_query_automaton


class Keyed:
    """A weakrefable stand-in for an automaton."""


class TestEviction:
    def test_capacity_bound_evicts_lru(self):
        built = []
        registry = EngineRegistry(lambda obj: built.append(obj) or len(built),
                                  capacity=2)
        first, second, third = Keyed(), Keyed(), Keyed()
        registry.get(first)
        registry.get(second)
        assert registry.get(first) == 1  # refresh: first is now MRU
        registry.get(third)  # evicts second (LRU), not first
        assert len(registry) == 2
        assert registry.evictions == 1
        assert registry.get(first) == 1  # still cached
        assert registry.get(second) == 4  # rebuilt
        assert registry.hits == 2
        assert registry.misses == 4

    def test_finalizer_evicts_collected_keys(self):
        registry = EngineRegistry(lambda obj: object(), capacity=8)
        keyed = Keyed()
        registry.get(keyed)
        assert len(registry) == 1
        del keyed
        gc.collect()
        assert len(registry) == 0
        assert registry.evictions == 1

    def test_counters_survive_eviction(self):
        registry = EngineRegistry(lambda obj: object(), capacity=1)
        keys = [Keyed() for _ in range(5)]
        for keyed in keys:
            registry.get(keyed)
            registry.get(keyed)
        assert len(registry) == 1
        assert registry.snapshot() == {
            "size": 1,
            "capacity": 1,
            "hits": 5,
            "misses": 5,
            "evictions": 4,
        }

    def test_id_reuse_does_not_alias(self):
        """A dead key's id may be recycled; identity check must rebuild."""
        registry = EngineRegistry(lambda obj: id(obj), capacity=4)
        for _ in range(20):
            keyed = Keyed()
            assert registry.get(keyed) == id(keyed)
            del keyed
        assert registry.hits == 0


class TestObsIntegration:
    def test_named_registry_registers_snapshot_provider(self):
        registry = EngineRegistry(
            lambda obj: object(), capacity=3, name="test.temp_registry"
        )
        try:
            keyed = Keyed()
            registry.get(keyed)
            registry.get(keyed)
            with obs.collecting() as stats:
                registry.get(keyed)
            report = stats.report()
            snapshot = report["caches"]["test.temp_registry"]
            assert snapshot["size"] == 1
            assert snapshot["capacity"] == 3
            assert snapshot["hits"] == 2
            assert snapshot["misses"] == 1
            assert report["counters"]["engine.registry_hits"] == 1
        finally:
            obs.cache_providers().pop("test.temp_registry", None)

    def test_numpy_registries_report_alongside_dict_registries(self):
        npkernel = pytest.importorskip("repro.perf.npkernel")
        if not npkernel.available():
            pytest.skip("numpy not installed")
        qa = odd_ones_query_automaton()
        with obs.collecting() as stats:
            npkernel.query_engine(qa).evaluate("01")
        caches = stats.report()["caches"]
        for name in (
            "perf.query_engines",
            "perf.transducers",
            "perf.np_sweeps",
            "perf.np_query_engines",
        ):
            assert name in caches, name
            assert caches[name]["capacity"] > 0
        # The numpy engine actually exercised its registries this run.
        assert caches["perf.np_query_engines"]["misses"] >= 1

    def test_eviction_of_numpy_engine_keeps_counters(self):
        npkernel = pytest.importorskip("repro.perf.npkernel")
        if not npkernel.available():
            pytest.skip("numpy not installed")
        registry = EngineRegistry(
            npkernel.NumpyQueryEngine, capacity=1, name=None
        )
        queries = [odd_ones_query_automaton() for _ in range(3)]
        for qa in queries:
            assert registry.get(qa).evaluate("010") == qa.evaluate("010")
        assert registry.misses == 3
        assert registry.evictions >= 2
        assert len(registry) == 1
