"""Seeded differential suite: streamed enumeration ≡ materialized select.

``Document.select_iter`` / :func:`repro.perf.enumerate.stream_select`
must yield exactly the paths ``Document.select`` returns, in document
order, on every engine — including the degenerate shapes that stress the
jump pointers (deep chains, wide fans, empty answer sets) — while never
materializing the full answer list and while sharing the same compile
path (pattern LRU + compile cache) as ``select``.
"""

from __future__ import annotations

import random

import pytest

from repro import obs
from repro.core.pipeline import Document, pattern_cache_clear
from repro.perf.enumerate import stream_select
from repro.trees.xml import XMLElement, make_bibliography

from ..serve.util import QUERIES, random_document

ENGINES = ("naive", None, "table", "numpy")

BIB_QUERIES = (
    "//author",
    "//nothing",
    "xpath://book[author and year]/title",
    "xpath://book[not(year)]",
    "mso:lab_author(x)",
)


def chain_document(depth: int) -> Document:
    """A unary chain ``a/a/.../a/b`` of the given depth."""
    node = XMLElement("b", {}, [])
    for _ in range(depth):
        node = XMLElement("a", {}, [node])
    return Document.from_element(node)


def fan_document(leaves: int) -> Document:
    """A root with ``leaves`` children cycling through four labels."""
    labels = ("a", "b", "c", "d")
    children = [XMLElement(labels[i % 4], {}, []) for i in range(leaves)]
    return Document.from_element(XMLElement("r", {}, children))


class TestStreamEqualsSelect:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_random_documents(self, engine):
        """Seeded random documents × all query syntaxes × every engine."""
        for seed in range(6):
            document = random_document(random.Random(seed))
            for query in QUERIES:
                expected = document.select(query, engine=engine)
                streamed = list(document.select_iter(query, engine=engine))
                assert streamed == expected, (seed, query, engine)

    @pytest.mark.parametrize("engine", ENGINES)
    def test_bibliography(self, engine):
        document = Document.from_text(make_bibliography(6, 5))
        for query in BIB_QUERIES:
            expected = document.select(query, engine=engine)
            assert (
                list(document.select_iter(query, engine=engine)) == expected
            ), (query, engine)

    @pytest.mark.parametrize("engine", ENGINES)
    def test_deep_chain(self, engine):
        """300-deep unary chain: the cursor walk must stay iterative."""
        document = chain_document(300)
        for query in ("//b", "//a", "//c"):
            expected = document.select(query, engine=engine)
            assert (
                list(document.select_iter(query, engine=engine)) == expected
            ), (query, engine)

    @pytest.mark.parametrize("engine", ENGINES)
    def test_wide_fan(self, engine):
        """900-leaf fan: jump pointers must skip unproductive leaves."""
        document = fan_document(900)
        for query in ("//b", "//d", "//missing"):
            expected = document.select(query, engine=engine)
            assert (
                list(document.select_iter(query, engine=engine)) == expected
            ), (query, engine)

    @pytest.mark.parametrize("engine", ENGINES)
    def test_query_objects(self, engine):
        """Compiled Query objects stream identically to their strings."""
        from repro.core.pipeline import _pattern_for

        document = Document.from_text(make_bibliography(4, 3))
        for query in BIB_QUERIES:
            query_obj = _pattern_for(query, document.alphabet)
            expected = document.select(query_obj, engine=engine)
            streamed = list(
                stream_select(query_obj, document.tree, engine=engine)
            )
            assert streamed == expected, (query, engine)


class TestCursorSemantics:
    def test_exhaustion(self):
        document = fan_document(8)
        cursor = document.select_iter("//b")
        answers = list(cursor)
        assert answers == document.select("//b")
        assert list(cursor) == []  # exhausted, stays exhausted

    def test_empty_answer_set(self):
        document = fan_document(8)
        assert list(document.select_iter("//zzz")) == []

    def test_early_close(self):
        document = fan_document(100)
        cursor = document.select_iter("//b")
        first = next(cursor)
        assert first == document.select("//b")[0]
        cursor.close()
        with pytest.raises(StopIteration):
            next(cursor)

    @pytest.mark.parametrize("engine", (None, "numpy", "naive"))
    def test_limit_offset(self, engine):
        document = Document.from_text(make_bibliography(5, 4))
        full = document.select("//author", engine=engine)
        assert len(full) >= 5
        for limit, offset in [
            (0, None),
            (1, None),
            (3, 2),
            (None, 3),
            (100, None),
            (2, 100),
        ]:
            start = offset or 0
            stop = None if limit is None else start + limit
            assert (
                list(
                    document.select_iter(
                        "//author", engine=engine, limit=limit, offset=offset
                    )
                )
                == full[start:stop]
            ), (limit, offset, engine)
            assert (
                document.select(
                    "//author", engine=engine, limit=limit, offset=offset
                )
                == full[start:stop]
            ), (limit, offset, engine)

    def test_limit_validation(self):
        document = fan_document(4)
        for bad in (-1, 1.5, True):
            with pytest.raises(ValueError):
                document.select_iter("//b", limit=bad)
            with pytest.raises(ValueError):
                document.select_iter("//b", offset=bad)
            with pytest.raises(ValueError):
                document.select("//b", limit=bad)

    def test_limit_stops_traversal(self):
        """``limit=1`` on a wide fan must not walk the whole tree."""
        document = fan_document(900)
        stats = obs.Stats()
        with obs.collecting(stats):
            assert list(document.select_iter("//a", limit=1)) == [(0,)]
        assert 0 < stats.counters["enumerate.nodes"] < 50
        assert stats.counters["enumerate.answers"] == 1

    def test_unproductive_subtrees_skipped(self):
        """A lone hit among 900 leaves costs a bounded walk, not O(n)."""
        children = [XMLElement("a", {}, []) for _ in range(900)]
        children[450] = XMLElement("hit", {}, [])
        document = Document.from_element(XMLElement("r", {}, children))
        stats = obs.Stats()
        with obs.collecting(stats):
            assert list(document.select_iter("//hit")) == [(450,)]
        # Root + the one productive child: the 899 unproductive leaves
        # are never visited by the cursor walk.
        assert stats.counters["enumerate.nodes"] <= 4


class TestSharedCompilePath:
    def test_select_iter_uses_pattern_lru(self):
        """select then select_iter on one string: one miss, then hits."""
        pattern_cache_clear()
        document = Document.from_text(make_bibliography(3, 2))
        stats = obs.Stats()
        with obs.collecting(stats):
            document.select("xpath://book/title")
        assert stats.counters["pipeline.pattern_cache_misses"] == 1
        stats = obs.Stats()
        with obs.collecting(stats):
            list(document.select_iter("xpath://book/title"))
        assert stats.counters["pipeline.pattern_cache_misses"] == 0
        assert stats.counters["pipeline.pattern_cache_hits"] == 1

    def test_compile_counters_agree(self):
        """Fresh equal-shaped queries compile identically on both paths."""
        pattern_cache_clear()
        document = Document.from_text(make_bibliography(3, 2))

        def compile_counters(run):
            stats = obs.Stats()
            with obs.collecting(stats):
                run()
            return {
                key: value
                for key, value in sorted(stats.counters.items())
                if key.startswith(("lang.", "compile.", "pipeline.pattern"))
            }

        via_select = compile_counters(
            lambda: document.select("xpath://book[author]/title")
        )
        via_iter = compile_counters(
            lambda: list(document.select_iter("xpath://book[year]/title"))
        )
        assert via_select == via_iter
        assert via_select["pipeline.pattern_cache_misses"] == 1


class TestFallbacks:
    def test_naive_engine_counts_fallback(self):
        document = fan_document(8)
        stats = obs.Stats()
        with obs.collecting(stats):
            assert list(
                document.select_iter("//b", engine="naive")
            ) == document.select("//b")
        assert stats.counters["enumerate.fallbacks"] == 1

    def test_cursor_counter(self):
        document = fan_document(8)
        stats = obs.Stats()
        with obs.collecting(stats):
            list(document.select_iter("//b"))
            list(document.select_iter("//c", engine="numpy"))
        assert stats.counters["enumerate.cursors"] == 2
        assert stats.counters["pipeline.select_iters"] == 2
