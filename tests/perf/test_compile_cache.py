"""Tests for formula hash-consing and the content-addressed compile cache.

Canonical-key invariances (α-equivalence, commutativity, sugar
normalization), memory/disk cache behavior including cold-vs-warm
round-trips in a temp dir, and the poisoning defense: a forced digest
collision between differing alphabets must be rejected as a miss.
"""

import pickle

import pytest

from repro import obs
from repro.logic.compile_strings import compile_sentence
from repro.logic.compile_trees import compile_tree_query
from repro.logic.syntax import (
    And,
    Equal,
    Exists,
    Forall,
    Implies,
    Label,
    Less,
    Not,
    Or,
    Var,
)
from repro.perf.compile import (
    CACHE,
    CompileCache,
    cache_payload,
    canonical_key,
    compile_cache_clear,
    compile_cache_info,
    formula_digest,
)

X, Y, Z, W = Var("x"), Var("y"), Var("z"), Var("w")


@pytest.fixture(autouse=True)
def fresh_cache():
    """Isolate every test from the process-global cache (and restore it)."""
    compile_cache_clear()
    directory = CACHE.directory
    CACHE.directory = None
    yield
    CACHE.directory = directory
    compile_cache_clear()


# ----------------------------------------------------------------------
# Canonical keys
# ----------------------------------------------------------------------


def test_alpha_equivalent_formulas_share_keys():
    first = Exists(X, And(Label(X, "a"), Exists(Y, Less(X, Y))))
    second = Exists(Z, And(Label(Z, "a"), Exists(W, Less(Z, W))))
    assert canonical_key(first) == canonical_key(second)


def test_commutative_connectives_sorted():
    left = And(Label(X, "a"), Label(X, "b"))
    right = And(Label(X, "b"), Label(X, "a"))
    assert canonical_key(left, (X,)) == canonical_key(right, (X,))
    nested = And(And(Label(X, "a"), Label(X, "b")), Label(X, "c"))
    flat = And(Label(X, "c"), And(Label(X, "b"), Label(X, "a")))
    assert canonical_key(nested, (X,)) == canonical_key(flat, (X,))


def test_sugar_normalization():
    assert canonical_key(Implies(Label(X, "a"), Label(X, "b")), (X,)) == (
        canonical_key(Or(Not(Label(X, "a")), Label(X, "b")), (X,))
    )
    assert canonical_key(Forall(Y, Less(X, Y)), (X,)) == canonical_key(
        Not(Exists(Y, Not(Less(X, Y)))), (X,)
    )
    assert canonical_key(Not(Not(Label(X, "a"))), (X,)) == canonical_key(
        Label(X, "a"), (X,)
    )
    assert canonical_key(Equal(X, Y), (X, Y)) == canonical_key(
        Equal(Y, X), (X, Y)
    )


def test_distinct_formulas_distinct_keys():
    assert canonical_key(Label(X, "a"), (X,)) != canonical_key(
        Label(X, "b"), (X,)
    )
    assert canonical_key(Less(X, Y), (X, Y)) != canonical_key(
        Less(Y, X), (X, Y)
    )


def test_digest_separates_alphabets():
    formula = Exists(X, Label(X, "a"))
    one = formula_digest(cache_payload("k", formula, (), ["a", "b"]))
    two = formula_digest(cache_payload("k", formula, (), ["a", "b", "c"]))
    assert one != two


# ----------------------------------------------------------------------
# Cache behavior through the compilers
# ----------------------------------------------------------------------


def test_repeat_compile_hits_memory_cache():
    phi = Exists(X, Label(X, "a"))
    with obs.collecting() as stats:
        first = compile_sentence(phi, ["a", "b"])
        second = compile_sentence(phi, ["a", "b"])
    assert first is second
    counters = stats.report()["counters"]
    assert counters["compile.cache_hits"] >= 1
    assert counters["compile.cache_misses"] >= 1
    info = compile_cache_info()
    assert info["hits"] >= 1 and info["currsize"] >= 1


def test_alpha_equivalent_subformulas_compile_once():
    """Hash-consing: a repeated (α-renamed) subformula is one compile."""
    from repro.logic.compile_trees import compile_tree_sentence

    phi = Or(
        Exists(X, Label(X, "a")),
        And(Exists(Y, Label(Y, "a")), Exists(X, Label(X, "b"))),
    )
    with obs.collecting() as stats:
        compile_sentence(phi, ["a", "b"])
    assert stats.report()["counters"]["compile.subformula_hits"] >= 1

    with obs.collecting() as stats:
        compile_tree_sentence(phi, ["a", "b"])
    assert stats.report()["counters"]["compile.subformula_hits"] >= 1


def test_validity_nfa_interned_across_subformulas():
    """One validity NFA per (alphabet, track mask), reused across atoms."""
    from repro.logic import compile_strings

    compile_strings._VALIDITY_CACHE.clear()
    phi = Exists(
        X, Exists(Y, And(Label(X, "a"), And(Label(Y, "b"), Less(X, Y))))
    )
    with obs.collecting() as stats:
        compile_sentence(phi, ["a", "b"])
    counters = stats.report()["counters"]
    assert counters["compile.validity_misses"] >= 1
    assert counters["compile.validity_hits"] >= 1

    # A different sentence with the same (alphabet, track-mask) shape
    # only hits the interned validity automaton.
    with obs.collecting() as stats:
        compile_sentence(
            Exists(Z, Exists(W, And(Label(Z, "b"), Less(W, Z)))), ["a", "b"]
        )
    counters = stats.report()["counters"]
    assert counters.get("compile.validity_misses", 0) == 0
    assert counters["compile.validity_hits"] >= 1


def test_alpha_equivalent_compile_shares_artifact():
    first = compile_tree_query(Exists(Y, Less(X, Y)), X, ["a", "b"])
    renamed = compile_tree_query(Exists(W, Less(Z, W)), Z, ["a", "b"])
    assert renamed is first


def test_disk_cache_cold_vs_warm(tmp_path):
    """A second cold process (simulated by clearing memory) loads from disk."""
    CACHE.set_directory(tmp_path)
    phi = Forall(X, Implies(Label(X, "a"), Exists(Y, Less(X, Y))))
    with obs.collecting() as stats:
        built = compile_sentence(phi, ["a", "b"])
    assert stats.report()["counters"]["compile.disk_writes"] >= 1
    assert list(tmp_path.glob("*.pkl"))

    compile_cache_clear()  # cold start: memory gone, disk remains
    with obs.collecting() as stats:
        reloaded = compile_sentence(phi, ["a", "b"])
    counters = stats.report()["counters"]
    assert counters["compile.disk_hits"] == 1
    assert counters["compile.cache_hits"] == 1
    assert reloaded.equivalent(built)


def test_poisoned_artifact_rejected(tmp_path):
    """A digest collision between differing alphabets must miss.

    We force the collision by copying the artifact written for one
    alphabet onto the digest path of another; the stored payload no
    longer matches the requested one, so the loader rejects it.
    """
    CACHE.set_directory(tmp_path)
    phi = Exists(X, Label(X, "a"))
    compile_sentence(phi, ["a", "b"])
    source = cache_payload(
        "string-sentence", phi, (), frozenset(["a", "b"])
    )
    target = cache_payload(
        "string-sentence", phi, (), frozenset(["a", "b", "c"])
    )
    blob = (tmp_path / f"{formula_digest(source)}.pkl").read_bytes()
    (tmp_path / f"{formula_digest(target)}.pkl").write_bytes(blob)

    compile_cache_clear()
    with obs.collecting() as stats:
        bigger = compile_sentence(phi, ["a", "b", "c"])
    counters = stats.report()["counters"]
    assert counters["compile.disk_rejects"] == 1
    assert counters.get("compile.disk_hits", 0) == 0
    # The freshly built artifact is correct for the bigger alphabet.
    assert bigger.accepts(["c", "a"]) and not bigger.accepts(["c", "b"])


def test_corrupt_artifact_degrades_to_miss(tmp_path):
    cache = CompileCache()
    cache.set_directory(tmp_path)
    payload = "p"
    digest = formula_digest(payload)
    (tmp_path / f"{digest}.pkl").write_bytes(b"not a pickle")
    hit, _value = cache.lookup(digest, payload)
    assert not hit
    assert cache.disk_rejects == 1


def test_unpicklable_values_stay_memory_only(tmp_path):
    cache = CompileCache()
    cache.set_directory(tmp_path)
    value = lambda: None  # noqa: E731 — deliberately unpicklable-by-content
    with pytest.raises(Exception):
        pickle.dumps(value)
    cache.store("d", "p", value)
    assert not list(tmp_path.glob("*.pkl"))
    hit, got = cache.lookup("d", "p")
    assert hit and got is value


def test_lru_eviction():
    cache = CompileCache(maxsize=2)
    for digest in ("one", "two", "three"):
        cache.store(digest, digest, digest)
    assert cache.lookup("one", "one")[0] is False
    assert cache.lookup("three", "three")[0] is True
