"""Unknown ``engine=`` names fail uniformly at every entry point.

One ``ValueError`` format — ``unknown engine <name>: valid engines are
...`` — regardless of whether the bad name reaches a pipeline entry
point, the batch dispatcher, or a kernel resolver, and regardless of
``jobs=`` sharding (validation happens in the parent, up front).
"""

import pytest

from repro.core.pipeline import Corpus, Document, batch_select
from repro.perf.batch import _engine_call, batch_evaluate, evaluate_one
from repro.perf.nptrees import tree_kernel
from repro.perf.registry import (
    VALID_ENGINES,
    unknown_engine,
    validate_engine,
)
from repro.perf.strings import numpy_kernel
from repro.strings.examples import odd_ones_query_automaton

DOC = "<a><b><c/></b><b/></a>"

MESSAGE = "unknown engine 'bogus': valid engines are 'naive', 'table', 'numpy'"


def document():
    return Document.from_text(DOC)


class TestUniformMessage:
    def test_helper_renders_the_one_format(self):
        assert str(unknown_engine("bogus")) == MESSAGE

    def test_validate_engine_accepts_all_valid_names(self):
        for name in (None,) + VALID_ENGINES:
            assert validate_engine(name) == name

    def test_document_select(self):
        with pytest.raises(ValueError) as excinfo:
            document().select("//b", engine="bogus")
        assert str(excinfo.value) == MESSAGE

    def test_batch_select(self):
        with pytest.raises(ValueError) as excinfo:
            batch_select([document()], "//b", engine="bogus")
        assert str(excinfo.value) == MESSAGE

    def test_batch_select_sharded_fails_in_parent(self):
        with pytest.raises(ValueError) as excinfo:
            batch_select([document()] * 2, "//b", jobs=2, engine="bogus")
        assert str(excinfo.value) == MESSAGE

    def test_corpus_select(self):
        corpus = Corpus([document()])
        with pytest.raises(ValueError) as excinfo:
            corpus.select("//b", engine="bogus")
        assert str(excinfo.value) == MESSAGE

    def test_engine_call_validates_up_front(self):
        qa = odd_ones_query_automaton()
        with pytest.raises(ValueError) as excinfo:
            _engine_call(qa, engine="bogus")
        assert str(excinfo.value) == MESSAGE

    def test_batch_evaluate_and_evaluate_one(self):
        qa = odd_ones_query_automaton()
        for call in (
            lambda: batch_evaluate(qa, ["01"], engine="bogus"),
            lambda: evaluate_one(qa, "01", engine="bogus"),
        ):
            with pytest.raises(ValueError) as excinfo:
                call()
            assert str(excinfo.value) == MESSAGE

    def test_kernel_resolvers_list_their_engines(self):
        expected = "unknown engine 'bogus': valid engines are 'table', 'numpy'"
        for resolver in (numpy_kernel, tree_kernel):
            with pytest.raises(ValueError) as excinfo:
                resolver("bogus")
            assert str(excinfo.value) == expected

    def test_every_entry_point_agrees(self):
        doc = document()
        messages = set()
        for call in (
            lambda: doc.select("//b", engine="bogus"),
            lambda: batch_select([doc], "//b", engine="bogus"),
            lambda: Corpus([doc]).select("//b", engine="bogus"),
            lambda: evaluate_one(
                odd_ones_query_automaton(), "01", engine="bogus"
            ),
        ):
            with pytest.raises(ValueError) as excinfo:
                call()
            messages.add(str(excinfo.value))
        assert messages == {MESSAGE}
