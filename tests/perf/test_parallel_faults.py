"""Worker failures surface as structured :class:`ShardError`.

Three failure families: a selection function that raises mid-corpus, a
worker tripping the decision-procedure step budget
(:class:`BudgetExceededError` — its carried counter snapshot must
survive the process boundary intact), and a non-picklable selection
function, which must be rejected at submit time with a clear message
rather than crashing inside the pool.
"""

import os

import pytest

from repro.decision.closure import BudgetExceededError, query_witness
from repro.perf.parallel import ParallelExecutor, parallel_map
from repro.perf.shard import ShardError
from repro.unranked.examples import circuit_query_automaton

JOBS = int(os.environ.get("REPRO_PARALLEL_JOBS", "2"))


# Selection functions must be module-level so the spawn pickle can find
# them in the worker's reimport of this module.

def _double(item: int) -> int:
    return item * 2


def _boom_on_seven(item: int) -> int:
    if item == 7:
        raise ValueError("item seven is cursed")
    return item


def _trip_budget(item: int):
    # One unit of budget cannot fit the Example 5.9 closure scan.
    return query_witness(circuit_query_automaton(), budget=1)


class TestWorkerRaises:
    def test_shard_error_names_the_failing_index(self):
        items = list(range(12))
        with ParallelExecutor(_boom_on_seven, jobs=JOBS) as executor:
            with pytest.raises(ShardError) as info:
                executor.map(items)
        error = info.value
        assert error.index == items.index(7)
        assert error.kind == "ValueError"
        assert "item seven is cursed" in error.detail
        assert isinstance(error.worker, int) and error.worker > 0
        assert error.worker != os.getpid()
        assert isinstance(error.counters, dict)
        assert error.worker_traceback and "ValueError" in error.worker_traceback

    def test_message_carries_index_kind_and_worker(self):
        with ParallelExecutor(_boom_on_seven, jobs=JOBS) as executor:
            with pytest.raises(
                ShardError, match=r"shard failed at input 7: ValueError"
            ) as info:
                executor.map(range(9))
        assert "worker=" in str(info.value)

    def test_executor_survives_a_failed_map(self):
        with ParallelExecutor(_boom_on_seven, jobs=JOBS) as executor:
            with pytest.raises(ShardError):
                executor.map(range(9))
            # The pool is still healthy: a clean corpus maps fine.
            assert executor.map([1, 2, 3]) == [1, 2, 3]


class TestBudgetExceeded:
    def test_serial_reference_raises_budget_error(self):
        with pytest.raises(BudgetExceededError) as info:
            _trip_budget(0)
        assert info.value.budget == 1
        assert info.value.counters  # the snapshot the worker must preserve

    def test_budget_failure_crosses_the_process_boundary(self):
        with ParallelExecutor(_trip_budget, jobs=JOBS) as executor:
            with pytest.raises(ShardError) as info:
                executor.map([0, 1])
        error = info.value
        assert error.kind == "BudgetExceededError"
        assert error.index == 0
        assert error.budget == 1
        # The exception-carried counter snapshot arrives intact and
        # matches what the same failure produces in-process.
        with pytest.raises(BudgetExceededError) as serial:
            _trip_budget(0)
        assert error.exc_counters == serial.value.counters
        assert "budget=1" in str(error)


class TestSubmitTimeRejection:
    def test_lambda_rejected_before_any_pool_exists(self):
        with pytest.raises(TypeError, match="picklable") as info:
            ParallelExecutor(lambda item: item, jobs=JOBS)
        assert "jobs=1" in str(info.value)  # the suggested fallback

    def test_lambda_fine_when_serial(self):
        with ParallelExecutor(lambda item: item + 1, jobs=1) as executor:
            assert executor.map([1, 2]) == [2, 3]

    def test_parallel_map_rejects_lambdas_too(self):
        with pytest.raises(TypeError, match="picklable"):
            parallel_map(lambda item: item, [1], jobs=JOBS)

    def test_non_callable_rejected_with_type_name(self):
        with pytest.raises(TypeError, match="cannot evaluate int"):
            ParallelExecutor(42, jobs=JOBS)


class TestSpawnMainGuard:
    """An unimportable ``__main__`` (stdin scripts) fails fast, not hangs."""

    def test_stdin_main_rejected(self, monkeypatch):
        import sys
        import types

        from repro.perf.parallel import _check_spawn_main

        fake = types.ModuleType("__main__")
        fake.__spec__ = None
        fake.__file__ = "<stdin>"
        monkeypatch.setitem(sys.modules, "__main__", fake)
        with pytest.raises(RuntimeError, match="jobs=1"):
            _check_spawn_main()

    def test_importable_mains_pass(self, monkeypatch):
        import sys
        import types

        from repro.perf.parallel import _check_spawn_main

        _check_spawn_main()  # the pytest launcher itself
        interactive = types.ModuleType("__main__")
        interactive.__spec__ = None
        monkeypatch.setitem(sys.modules, "__main__", interactive)
        _check_spawn_main()  # no __file__: interactive interpreter


class TestLifecycle:
    def test_closed_executor_refuses_parallel_work(self):
        executor = ParallelExecutor(_double, jobs=JOBS)
        executor.map([1])  # spin the pool up
        executor.close()
        with pytest.raises(RuntimeError, match="closed"):
            executor.map([2])

    def test_close_is_idempotent(self):
        executor = ParallelExecutor(_double, jobs=JOBS)
        executor.close()
        executor.close()

    def test_jobs_must_be_positive(self):
        with pytest.raises(ValueError, match="jobs must be >= 1"):
            ParallelExecutor(_double, jobs=0)
