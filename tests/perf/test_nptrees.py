"""Differential suite for the vectorized tree kernel (``engine="numpy"``).

The dict engines of :mod:`repro.perf.trees` and the uncached evaluators
are the oracles: across the seeded sweeps below (> 500 trees in total,
plus adversarial shapes — deep chains, wide flat fans, heavily shared
subtree types, single-node and empty-label documents) the numpy engines
must return identical results *and raise identical errors*.  The
no-numpy and overflow paths must degrade silently behind the
``npkernel.*`` fallback counters, and exported tree programs must
evaluate identically when attached to a raw buffer.
"""

import random

import pytest

from repro import obs
from repro.core.patterns import compile_pattern
from repro.perf import nptrees
from repro.perf.batch import batch_evaluate, evaluate_one
from repro.perf.trees import fast_evaluate_marked, fast_evaluate_unranked
from repro.strings.dfa import DFA
from repro.trees.generators import (
    flat_tree,
    random_tree,
    random_unranked_circuit,
)
from repro.trees.tree import Tree
from repro.unranked.dbta import (
    DeterministicUnrankedAutomaton,
    HorizontalClassifier,
    evaluate_marked_query,
)
from repro.unranked.examples import (
    circuit_query_automaton,
    circuit_reference_query,
    first_one_sqa,
)

requires_numpy = pytest.mark.skipif(
    not nptrees.available(), reason="numpy not installed"
)

LABELS = ("a", "b", "c")
PATTERNS = ("//a", "//a[has(b)]", "/a/b")


def _pair(label, bit):
    return (label, bit)


def _random_trees(seed, count, max_size=40, labels=LABELS):
    rng = random.Random(seed)
    return [
        random_tree(rng.randrange(1, max_size), list(labels), seed_or_rng=rng)
        for _ in range(count)
    ]


def _deep_chain(depth=300):
    tree = Tree("a", ())
    for _ in range(depth):
        tree = Tree("a", (Tree("b", ()), tree))
    return tree


def _shared_forest(seed=11):
    """A tree whose subtrees repeat heavily (few distinct types)."""
    rng = random.Random(seed)
    sub = random_tree(15, list(LABELS), seed_or_rng=rng)
    layer = Tree("b", (sub,) * 8)
    return Tree("a", (layer,) * 6 + (sub,) * 4)


ADVERSARIAL = [
    _deep_chain(),
    flat_tree(["a", "b", "c"] * 300, root="a"),
    _shared_forest(),
    Tree("a", ()),
    Tree("b", ()),
]


class TestMarkedDifferential:
    """Figure 5: numpy vs the dict engine vs the uncached two-pass."""

    @pytest.mark.parametrize("pattern", PATTERNS)
    @requires_numpy
    def test_seeded_random_trees(self, pattern):
        query = compile_pattern(pattern, LABELS)
        automaton = query.compiled()
        for i, tree in enumerate(_random_trees(hash(pattern) & 0xFFFF, 70)):
            table = fast_evaluate_marked(automaton, tree)
            uncached = evaluate_marked_query(automaton, tree, _pair)
            vectorized = fast_evaluate_marked(automaton, tree, engine="numpy")
            assert vectorized == table == uncached, (pattern, i, tree)

    @requires_numpy
    def test_adversarial_shapes(self):
        query = compile_pattern("//a[has(b)]", LABELS)
        automaton = query.compiled()
        for tree in ADVERSARIAL:
            expected = evaluate_marked_query(automaton, tree, _pair)
            assert fast_evaluate_marked(
                automaton, tree, engine="numpy"
            ) == expected

    @requires_numpy
    def test_empty_label_documents(self):
        alphabet = ("", "a")
        query = compile_pattern("//a", alphabet)
        automaton = query.compiled()
        for tree in (
            Tree("", ()),
            Tree("", (Tree("a", ()), Tree("", ()))),
            Tree("a", (Tree("", (Tree("a", ()),)),)),
        ):
            expected = evaluate_marked_query(automaton, tree, _pair)
            assert fast_evaluate_marked(
                automaton, tree, engine="numpy"
            ) == expected

    @requires_numpy
    def test_unknown_label_raises_identically(self):
        query = compile_pattern("//a", LABELS)
        automaton = query.compiled()
        bad = Tree("zzz", ())
        with pytest.raises(KeyError) as oracle_error:
            fast_evaluate_marked(automaton, bad)
        with pytest.raises(KeyError) as numpy_error:
            fast_evaluate_marked(automaton, bad, engine="numpy")
        assert repr(numpy_error.value) == repr(oracle_error.value)

    @requires_numpy
    def test_batch_and_document_paths_agree(self):
        from repro.core.pipeline import Document
        from repro.trees.xml import make_bibliography

        document = Document.from_text(make_bibliography(6, 6))
        assert document.select("//author", engine="numpy") == document.select(
            "//author"
        )
        query = compile_pattern("//author", document.alphabet)
        trees = [document.tree] * 3
        assert batch_evaluate(query, trees, engine="numpy") == batch_evaluate(
            query, trees
        )


class TestUnrankedDifferential:
    """Lemma 5.16: numpy vs the dict engine vs cut simulation."""

    @requires_numpy
    def test_seeded_circuits(self):
        qa = circuit_query_automaton()
        rng = random.Random(0x516)
        for i in range(160):
            tree = random_unranked_circuit(
                rng.randrange(1, 5), max_arity=4, seed_or_rng=rng
            )
            table = fast_evaluate_unranked(qa, tree)
            vectorized = fast_evaluate_unranked(qa, tree, engine="numpy")
            assert vectorized == table, (i, tree)
            assert vectorized == circuit_reference_query(tree), (i, tree)

    @requires_numpy
    def test_stay_sqa_flat_trees(self):
        """Example 5.14: stays route through the oracle's GSQA path."""
        sqa = first_one_sqa()
        rng = random.Random(0x514)
        for i in range(120):
            leaves = [rng.choice("01") for _ in range(rng.randrange(1, 12))]
            tree = flat_tree(leaves, root=rng.choice("01"))
            table = fast_evaluate_unranked(sqa, tree)
            vectorized = fast_evaluate_unranked(sqa, tree, engine="numpy")
            assert vectorized == table == sqa.evaluate(tree), (i, leaves)

    @requires_numpy
    def test_deep_circuit_chain(self):
        qa = circuit_query_automaton()
        tree = Tree("1", ())
        for _ in range(200):
            tree = Tree("AND", (tree,))
        expected = fast_evaluate_unranked(qa, tree)
        assert fast_evaluate_unranked(qa, tree, engine="numpy") == expected

    @requires_numpy
    def test_query_object_dispatch(self):
        from repro.core.query import UnrankedAutomatonQuery

        qa = circuit_query_automaton()
        query = UnrankedAutomatonQuery(qa)
        tree = random_unranked_circuit(3, 3, seed_or_rng=5)
        assert evaluate_one(query, tree, engine="numpy") == evaluate_one(
            query, tree
        )
        assert evaluate_one(query, tree, engine="naive") == evaluate_one(
            query, tree
        )


class TestNaiveEngine:
    """``engine="naive"`` selects the uncached oracles (regression: it
    used to raise through the string-kernel resolver)."""

    def test_batch_naive_matches_default(self):
        query = compile_pattern("//a[has(b)]", LABELS)
        trees = _random_trees(0xA1, 15)
        assert batch_evaluate(query, trees, engine="naive") == batch_evaluate(
            query, trees
        )

    def test_document_select_naive(self):
        from repro.core.pipeline import Document
        from repro.trees.xml import make_bibliography

        document = Document.from_text(make_bibliography(3, 3))
        assert document.select("//author", engine="naive") == document.select(
            "//author"
        )


class TestFallbacks:
    def test_missing_numpy_degrades_with_counter(self, monkeypatch):
        monkeypatch.setattr(nptrees, "np", None)
        query = compile_pattern("//a", LABELS)
        automaton = query.compiled()
        tree = Tree("a", (Tree("b", ()),))
        with obs.collecting() as stats:
            result = fast_evaluate_marked(automaton, tree, engine="numpy")
        assert result == fast_evaluate_marked(automaton, tree)
        counters = stats.report()["counters"]
        assert counters["npkernel.fallbacks"] == 1
        assert "npkernel.tree_evaluations" not in counters

    def test_missing_numpy_export_returns_none(self, monkeypatch):
        monkeypatch.setattr(nptrees, "np", None)
        query = compile_pattern("//a", LABELS)
        with obs.collecting() as stats:
            assert nptrees.export_tree_program(query) is None
        assert stats.report()["counters"]["npkernel.fallbacks"] == 1

    def test_unknown_engine_rejected(self):
        with pytest.raises(
            ValueError, match="unknown engine 'bogus': valid engines are"
        ):
            nptrees.tree_kernel("bogus")

    @requires_numpy
    def test_combo_overflow_kills_engine(self, monkeypatch):
        monkeypatch.setattr(nptrees, "MAX_TREE_COMBOS", 0)
        # A pattern no other test compiles, so the engine is built fresh
        # under the patched cap instead of reusing interned combos.
        query = compile_pattern("//a[has(c)]", LABELS)
        automaton = query.compiled()
        tree = Tree("a", (Tree("b", ()),))
        expected = fast_evaluate_marked(automaton, tree)
        with obs.collecting() as stats:
            result = fast_evaluate_marked(automaton, tree, engine="numpy")
        assert result == expected
        counters = stats.report()["counters"]
        assert counters["npkernel.overflows"] == 1
        assert counters["npkernel.tree_fallbacks"] == 1
        # The engine is dead: later calls fall straight back.
        with obs.collecting() as stats:
            assert fast_evaluate_marked(
                automaton, tree, engine="numpy"
            ) == expected
        counters = stats.report()["counters"]
        assert counters["npkernel.tree_fallbacks"] == 1
        assert "npkernel.overflows" not in counters

    @requires_numpy
    def test_set_overflow_kills_unranked_engine(self, monkeypatch):
        monkeypatch.setattr(nptrees, "MAX_TREE_SETS", 0)
        qa = circuit_query_automaton()
        tree = Tree("AND", (Tree("1", ()), Tree("1", ())))
        expected = fast_evaluate_unranked(qa, tree)
        assert expected  # a selecting tree, so the root set must intern
        with obs.collecting() as stats:
            result = fast_evaluate_unranked(qa, tree, engine="numpy")
        assert result == expected
        counters = stats.report()["counters"]
        assert counters["npkernel.overflows"] == 1
        assert counters["npkernel.tree_fallbacks"] == 1

    @requires_numpy
    def test_partial_classifier_falls_back_per_tree(self):
        """A non-total horizontal DFA routes the whole tree to the oracle."""
        dfa = DFA(
            states=frozenset({0, 1}),
            alphabet=frozenset({"v0", "v1"}),
            transitions={(0, "v0"): 1},
            initial=0,
            accepting=frozenset({1}),
        )
        classifier = HorizontalClassifier(dfa, {0: "v0", 1: "v1"})
        automaton = DeterministicUnrankedAutomaton(
            states=frozenset({"v0", "v1"}),
            alphabet=frozenset({("a", 0), ("a", 1)}),
            accepting=frozenset({"v0"}),
            classifiers={("a", 0): classifier, ("a", 1): classifier},
        )
        tree = Tree("a", ())
        expected = evaluate_marked_query(automaton, tree, _pair)
        with obs.collecting() as stats:
            result = fast_evaluate_marked(automaton, tree, engine="numpy")
        assert result == expected
        counters = stats.report()["counters"]
        assert counters["npkernel.tree_fallbacks"] == 1


class TestCountersAndCaching:
    @requires_numpy
    def test_evaluation_counters_fire(self):
        query = compile_pattern("//a", LABELS)
        automaton = query.compiled()
        tree = random_tree(30, list(LABELS), seed_or_rng=3)
        with obs.collecting() as stats:
            fast_evaluate_marked(automaton, tree, engine="numpy")
            fast_evaluate_marked(automaton, tree, engine="numpy")
        counters = stats.report()["counters"]
        assert counters["npkernel.tree_evaluations"] == 2
        assert counters["npkernel.tree_nodes"] == 2 * tree.size
        # Same tree object: one encoding; types interned once globally.
        assert counters["npkernel.tree_encodings"] <= 1

    @requires_numpy
    def test_type_work_shared_across_trees(self):
        """A re-parsed identical tree re-encodes but re-uses every type."""
        query = compile_pattern("//a", LABELS)
        automaton = query.compiled()
        first = Tree.parse("a(b, c(a, b), b)")
        second = Tree.parse("a(b, c(a, b), b)")
        fast_evaluate_marked(automaton, first, engine="numpy")
        with obs.collecting() as stats:
            fast_evaluate_marked(automaton, second, engine="numpy")
        counters = stats.report()["counters"]
        assert "npkernel.tree_types" not in counters


class TestExportedPrograms:
    @requires_numpy
    def test_export_attach_differential(self):
        query = compile_pattern("//a[has(b)]", LABELS)
        program = nptrees.export_tree_program(query)
        assert program is not None
        header, payload = program
        attached = nptrees.AttachedTreeEngine(header, payload)
        for tree in _random_trees(0xE0, 40) + ADVERSARIAL:
            assert attached(tree) == evaluate_one(query, tree)

    @requires_numpy
    def test_export_is_cached_on_engine(self):
        query = compile_pattern("//a", LABELS)
        with obs.collecting() as stats:
            first = nptrees.export_tree_program(query)
            second = nptrees.export_tree_program(query)
        assert first is second
        assert stats.report()["counters"]["npkernel.tree_exports"] == 1

    @requires_numpy
    def test_unranked_query_has_no_tree_program(self):
        qa = circuit_query_automaton()
        assert nptrees.export_tree_program(qa) is None

    @requires_numpy
    def test_attach_counts(self):
        query = compile_pattern("//b", LABELS)
        header, payload = nptrees.export_tree_program(query)
        with obs.collecting() as stats:
            nptrees.AttachedTreeEngine(header, payload)
        counters = stats.report()["counters"]
        assert counters["npkernel.attached_tree_programs"] == 1
