"""The batch API: dispatch, amortization, and the pipeline routing."""

import random

import pytest

from repro.core.patterns import compile_pattern
from repro.core.pipeline import Document, batch_select, cached_pattern
from repro.core.query import CompiledQuery, UnrankedAutomatonQuery
from repro.perf import batch_evaluate, evaluate_one
from repro.strings.examples import odd_ones_gsqa, odd_ones_query_automaton
from repro.trees.generators import random_tree
from repro.unranked.examples import circuit_query_automaton


class TestDispatch:
    def test_string_query_automaton(self):
        qa = odd_ones_query_automaton()
        words = ["0110", "111", "", "10101"]
        assert batch_evaluate(qa, words) == [qa.evaluate(word) for word in words]

    def test_gsqa(self):
        gsqa = odd_ones_gsqa()
        words = ["0110", "111", "1"]
        assert batch_evaluate(gsqa, words) == [
            gsqa.transduce(word) for word in words
        ]

    def test_unranked_query_automaton(self):
        qa = circuit_query_automaton()
        from repro.trees.generators import random_unranked_circuit

        trees = [random_unranked_circuit(2, seed_or_rng=seed) for seed in range(6)]
        assert batch_evaluate(qa, trees) == [qa.evaluate(tree) for tree in trees]

    def test_mso_query_and_compiled_forms(self):
        labels = ("a", "b")
        query = compile_pattern("//a", labels)
        trees = [
            random_tree(size, list(labels), seed_or_rng=size) for size in range(1, 8)
        ]
        expected = [query.evaluate(tree) for tree in trees]
        assert batch_evaluate(query, trees) == expected
        assert batch_evaluate(query.compiled(), trees) == expected
        assert batch_evaluate(CompiledQuery(query.compiled()), trees) == expected

    def test_fast_engine_flags_agree(self):
        labels = ("a", "b")
        tree = random_tree(9, list(labels), seed_or_rng=5)
        query = compile_pattern("//a", labels)
        fast = compile_pattern("//a", labels, engine="fast")
        assert fast.evaluate(tree) == query.evaluate(tree)
        qa = circuit_query_automaton()
        from repro.trees.generators import random_unranked_circuit

        circuit = random_unranked_circuit(2, seed_or_rng=9)
        assert (
            UnrankedAutomatonQuery(qa, engine="fast").evaluate(circuit)
            == UnrankedAutomatonQuery(qa, engine="simulate").evaluate(circuit)
            == UnrankedAutomatonQuery(qa, engine="behavior").evaluate(circuit)
        )

    def test_evaluate_one_matches_batch(self):
        qa = odd_ones_query_automaton()
        assert evaluate_one(qa, "0110") == batch_evaluate(qa, ["0110"])[0]

    def test_unknown_objects_are_rejected(self):
        with pytest.raises(TypeError):
            batch_evaluate(object(), ["x"])


BIB = """<bib>
  <book><author>abiteboul</author><title>foundations</title></book>
  <book><author>vianu</author><title>queries</title></book>
</bib>"""


class TestPipelineRouting:
    def test_select_uses_cached_pattern(self):
        document = Document.from_text(BIB)
        first = document.select("//author")
        second = document.select("//author")
        assert first == second
        key = ("//author", document.alphabet)
        assert cached_pattern(*key) is cached_pattern(*key)

    def test_select_matches_direct_evaluation(self):
        document = Document.from_text(BIB)
        query = compile_pattern("//author", document.alphabet)
        assert document.select("//author") == sorted(query.evaluate(document.tree))
        assert document.select(query) == sorted(query.evaluate(document.tree))

    def test_batch_select_matches_per_document_select(self):
        texts = [
            BIB,
            "<bib><book><author>neven</author></book></bib>",
            "<bib></bib>",
        ]
        documents = [Document.from_text(text) for text in texts]
        batched = batch_select(documents, "//author")
        assert batched == [document.select("//author") for document in documents]

    def test_batch_select_accepts_query_objects(self):
        documents = [Document.from_text(BIB)]
        query = compile_pattern("//title", documents[0].alphabet)
        assert batch_select(documents, query) == [documents[0].select(query)]

    def test_batch_select_empty(self):
        assert batch_select([], "//author") == []


class TestCrossCallCaching:
    def test_engines_survive_across_batches(self):
        from repro.perf.strings import _QUERY_ENGINES

        qa = odd_ones_query_automaton()
        batch_evaluate(qa, ["01"])
        engine = _QUERY_ENGINES.get(qa)
        batch_evaluate(qa, ["0110", "10"])
        assert _QUERY_ENGINES.get(qa) is engine

    def test_random_batches_agree_with_naive(self):
        qa = odd_ones_query_automaton()
        rng = random.Random(0xE1)
        words = [
            "".join(rng.choice("01") for _ in range(rng.randrange(12)))
            for _ in range(100)
        ]
        assert batch_evaluate(qa, words) == [qa.evaluate(word) for word in words]
