"""The bitset kernel: interning, bit iteration, packed NFAs."""

import random

import pytest

from repro.perf.bitset import Interner, PackedNFA, is_subset, iter_bits, mask_of
from repro.strings.nfa import EPSILON, NFA


class TestInterner:
    def test_dense_ids_in_insertion_order(self):
        ids = Interner(["a", "b"])
        assert ids.intern("a") == 0
        assert ids.intern("c") == 2
        assert ids.values() == ["a", "b", "c"]
        assert len(ids) == 3
        assert "b" in ids and "z" not in ids

    def test_id_of_does_not_intern(self):
        ids = Interner()
        assert ids.id_of("x") is None
        assert "x" not in ids

    def test_mask_roundtrip(self):
        ids = Interner(["a", "b", "c", "d"])
        mask = ids.mask_of(["d", "b"])
        assert mask == (1 << 3) | (1 << 1)
        assert ids.unpack(mask) == ["b", "d"]

    def test_value_inverts_intern(self):
        ids = Interner()
        for value in [("q", 1), frozenset({2}), "s"]:
            assert ids.value(ids.intern(value)) == value


class TestBitHelpers:
    def test_iter_bits_ascending(self):
        assert list(iter_bits(0)) == []
        assert list(iter_bits(0b101001)) == [0, 3, 5]

    def test_mask_of_inverts_iter_bits(self):
        rng = random.Random(7)
        for _ in range(50):
            mask = rng.getrandbits(200)
            assert mask_of(iter_bits(mask)) == mask

    def test_is_subset(self):
        assert is_subset(0, 0)
        assert is_subset(0b0101, 0b1101)
        assert not is_subset(0b0101, 0b1001)


def _random_nfa(seed: int, n_states: int = 5) -> NFA:
    rng = random.Random(seed)
    states = [f"q{i}" for i in range(n_states)]
    alphabet = ["a", "b"]
    transitions: dict = {}
    for source in states:
        for symbol in alphabet + [EPSILON]:
            if rng.random() < 0.4:
                targets = {s for s in states if rng.random() < 0.4}
                if targets:
                    transitions[(source, symbol)] = targets
    return NFA.build(
        states,
        frozenset(alphabet),
        transitions,
        {states[0]},
        {s for s in states if rng.random() < 0.3},
    )


class TestPackedNFA:
    def test_matches_naive_nfa_on_random_words(self):
        rng = random.Random(11)
        for seed in range(30):
            nfa = _random_nfa(seed)
            packed = PackedNFA(nfa)
            for _ in range(20):
                word = [rng.choice("ab") for _ in range(rng.randrange(8))]
                frontier = packed.initial_mask
                naive = nfa.epsilon_closure(nfa.initials)
                for symbol in word:
                    frontier = packed.step_mask(frontier, symbol)
                    naive = nfa.step(naive, symbol)
                assert packed.subset_of(frontier) == naive, (seed, word)
                assert packed.accepts_mask(frontier) == bool(
                    naive & nfa.accepting
                )

    def test_initial_mask_is_epsilon_closed(self):
        nfa = NFA.build(
            {"p", "q", "r"},
            frozenset({"a"}),
            {("p", EPSILON): {"q"}, ("q", EPSILON): {"r"}},
            {"p"},
            {"r"},
        )
        packed = PackedNFA(nfa)
        assert packed.subset_of(packed.initial_mask) == {"p", "q", "r"}
        assert packed.accepts_mask(packed.initial_mask)

    def test_step_on_unknown_symbol_is_empty(self):
        packed = PackedNFA(_random_nfa(1))
        assert packed.step_mask(packed.initial_mask, "nope") == 0
