"""The Σ-tree data model (Section 2.3)."""

import pytest
from hypothesis import given, settings

from repro.trees.tree import Tree, TreeError, is_ancestor, sigma_tree

from ..conftest import trees


class TestConstruction:
    def test_parse_roundtrip(self):
        text = "a(b, c(d, e), f)"
        tree = Tree.parse(text)
        assert str(tree) == text
        assert Tree.parse(str(tree)) == tree

    def test_parse_leaf(self):
        assert Tree.parse("x").size == 1
        assert Tree.parse("x()").size == 1

    def test_parse_errors(self):
        with pytest.raises(TreeError):
            Tree.parse("a(b")
        with pytest.raises(TreeError):
            Tree.parse("a)b(")
        with pytest.raises(TreeError):
            Tree.parse("a(b,)")

    def test_sigma_tree_notation(self):
        tree = sigma_tree("f", Tree.leaf("a"), Tree.leaf("b"))
        assert str(tree) == "f(a, b)"


class TestStructure:
    def test_size_height_arity(self):
        tree = Tree.parse("a(b(c), d, e(f, g))")
        assert tree.size == 7
        assert tree.height == 2
        assert tree.arity == 3
        assert tree.rank() == 3

    def test_is_ranked(self):
        tree = Tree.parse("a(b, c(d, e))")
        assert tree.is_ranked(2)
        assert not tree.is_ranked(1)

    def test_subtree_and_labels(self):
        tree = Tree.parse("a(b, c(d, e))")
        assert tree.subtree((1,)).label == "c"
        assert tree.label_at((1, 0)) == "d"
        assert tree.arity_at((1,)) == 2
        with pytest.raises(TreeError):
            tree.subtree((5,))

    def test_envelope(self):
        """The paper's t̄_v: delete the subtrees of v's children, keep v."""
        tree = Tree.parse("a(b(x, y), c)")
        envelope = tree.envelope((0,))
        assert str(envelope) == "a(b, c)"
        # t_v and t̄_v share v (the paper's footnote 3).
        assert envelope.has_node((0,))

    def test_envelope_of_root(self):
        tree = Tree.parse("a(b, c)")
        assert str(tree.envelope(())) == "a"


class TestTraversals:
    def test_nodes_document_order(self):
        tree = Tree.parse("a(b(c), d)")
        assert list(tree.nodes()) == [(), (0,), (0, 0), (1,)]

    def test_postorder_children_first(self):
        tree = Tree.parse("a(b(c), d)")
        order = list(tree.postorder())
        assert order.index((0, 0)) < order.index((0,))
        assert order.index((0,)) < order.index(())
        assert order.index((1,)) < order.index(())

    def test_levels(self):
        tree = Tree.parse("a(b(c), d)")
        assert list(tree.nodes_by_depth()) == [[()], [(0,), (1,)], [(0, 0)]]

    def test_leaves(self):
        tree = Tree.parse("a(b(c), d)")
        assert list(tree.leaves()) == [(0, 0), (1,)]


class TestDerived:
    def test_mark(self):
        tree = Tree.parse("a(b, c)")
        marked = tree.mark((1,))
        assert marked.label_at((1,)) == "c*"
        assert marked.label_at((0,)) == "b"

    def test_relabel_shape_preserved(self):
        tree = Tree.parse("a(b, c)")
        upper = tree.relabel(lambda _p, label: label.upper())
        assert str(upper) == "A(B, C)"

    def test_is_ancestor(self):
        assert is_ancestor((), (0,))
        assert is_ancestor((0,), (0, 1, 2))
        assert not is_ancestor((0,), (0,))
        assert not is_ancestor((1,), (0, 1))

    @given(trees())
    @settings(max_examples=50, deadline=None)
    def test_node_count_invariants(self, tree):
        nodes = list(tree.nodes())
        assert len(nodes) == tree.size
        assert len(set(nodes)) == tree.size
        assert sorted(nodes) == nodes  # document order
        assert len(list(tree.postorder())) == tree.size

    @given(trees())
    @settings(max_examples=50, deadline=None)
    def test_parse_str_roundtrip(self, tree):
        assert Tree.parse(str(tree)) == tree
