"""XML parsing and DTD validation — the Figures 1–4 pipeline."""

import pytest

from repro.trees.dtd import (
    BIBLIOGRAPHY_DTD,
    DTDError,
    parse_dtd,
)
from repro.trees.tree import Tree
from repro.trees.xml import (
    BIBLIOGRAPHY_EXAMPLE,
    XMLError,
    make_bibliography,
    parse_document,
    parse_to_structure_tree,
    parse_to_tree,
    serialize,
)


class TestXMLParsing:
    def test_figure_1_shape(self):
        element = parse_document(BIBLIOGRAPHY_EXAMPLE)
        assert element.tag == "bibliography"
        assert [child.tag for child in element.elements()] == ["book", "article"]
        book = element.elements()[0]
        assert [child.tag for child in book.elements()] == [
            "author", "author", "author", "title", "publisher", "year",
        ]

    def test_figure_3_tree_with_text(self):
        tree = parse_to_tree(BIBLIOGRAPHY_EXAMPLE)
        assert tree.label == "bibliography"
        assert tree.size == 23  # 11 elements + 10 text leaves + root... (Fig. 3)
        assert tree.label_at((0, 0)) == "author"
        assert tree.label_at((0, 0, 0)) == "#text"

    def test_figure_4_structure_tree(self):
        tree = parse_to_structure_tree(BIBLIOGRAPHY_EXAMPLE)
        assert "#text" not in tree.labels()
        assert tree.label_at((1,)) == "article"
        assert tree.arity_at((1,)) == 4

    def test_attributes_and_self_closing(self):
        element = parse_document('<a x="1"><b/><c y="z &amp; w"/></a>')
        assert element.attributes == {"x": "1"}
        assert element.elements()[1].attributes == {"y": "z & w"}

    def test_comments_skipped(self):
        element = parse_document("<a><!-- hidden --><b/></a>")
        assert [child.tag for child in element.elements()] == ["b"]

    def test_mismatched_tags_rejected(self):
        with pytest.raises(XMLError):
            parse_document("<a><b></a></b>")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(XMLError):
            parse_document("<a/><b/>")

    def test_serialize_roundtrip(self):
        element = parse_document(BIBLIOGRAPHY_EXAMPLE)
        again = parse_document(serialize(element))
        assert parse_to_tree(serialize(element)) == parse_to_tree(
            BIBLIOGRAPHY_EXAMPLE
        )
        assert again.tag == "bibliography"


class TestDTD:
    def test_figure_2_validates_figure_1(self):
        dtd = parse_dtd(BIBLIOGRAPHY_DTD)
        tree = parse_to_tree(BIBLIOGRAPHY_EXAMPLE)
        assert dtd.validates(tree)
        assert dtd.violations(tree) == []

    def test_root_defaults_to_first_declaration(self):
        dtd = parse_dtd(BIBLIOGRAPHY_DTD)
        assert dtd.root == "bibliography"

    def test_missing_required_child_rejected(self):
        dtd = parse_dtd(BIBLIOGRAPHY_DTD)
        bad = Tree(
            "bibliography",
            [Tree("book", [Tree("title", [Tree("#text")])])],
        )
        assert not dtd.validates(bad)
        assert any("book" in message for _p, message in dtd.violations(bad))

    def test_wrong_root_rejected(self):
        dtd = parse_dtd(BIBLIOGRAPHY_DTD)
        assert not dtd.validates(Tree("article"))

    def test_empty_and_any(self):
        dtd = parse_dtd(
            "<!ELEMENT r (a, b)> <!ELEMENT a EMPTY> <!ELEMENT b ANY>"
        )
        good = Tree("r", [Tree("a"), Tree("b", [Tree("a"), Tree("a")])])
        assert dtd.validates(good)
        bad = Tree("r", [Tree("a", [Tree("b")]), Tree("b")])
        assert not dtd.validates(bad)

    def test_duplicate_declaration_rejected(self):
        with pytest.raises(DTDError):
            parse_dtd("<!ELEMENT a EMPTY> <!ELEMENT a ANY>")

    def test_automaton_agrees_with_diagnostics(self):
        """Tree-automaton validation ⟺ no per-node violations."""
        dtd = parse_dtd(BIBLIOGRAPHY_DTD)
        samples = [
            parse_to_tree(BIBLIOGRAPHY_EXAMPLE),
            Tree("bibliography", [Tree("article", [
                Tree("author", [Tree("#text")]),
                Tree("title", [Tree("#text")]),
                Tree("journal", [Tree("#text")]),
                Tree("year", [Tree("#text")]),
            ])]),
            Tree("bibliography"),
            Tree("bibliography", [Tree("book")]),
        ]
        for tree in samples:
            assert dtd.validates(tree) == (not dtd.violations(tree)), str(tree)

    def test_generated_bibliographies_validate(self):
        dtd = parse_dtd(BIBLIOGRAPHY_DTD)
        for books, articles in [(1, 0), (0, 1), (3, 2)]:
            tree = parse_to_tree(make_bibliography(books, articles))
            assert dtd.validates(tree)
