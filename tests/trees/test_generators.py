"""Workload generators: determinism and shape invariants."""

import pytest

from repro.trees.generators import (
    complete_binary_tree,
    enumerate_trees,
    evaluate_circuit,
    flat_tree,
    monadic_chain,
    random_binary_circuit,
    random_tree,
    random_unranked_circuit,
)


class TestShapes:
    def test_complete_binary(self):
        tree = complete_binary_tree(3)
        assert tree.size == 15
        assert tree.height == 3
        assert all(
            tree.arity_at(p) in (0, 2) for p in tree.nodes()
        )

    def test_flat(self):
        tree = flat_tree(["0", "1", "1"])
        assert tree.height == 1
        assert [tree.label_at((i,)) for i in range(3)] == ["0", "1", "1"]

    def test_chain(self):
        tree = monadic_chain(["a", "b", "c"])
        assert str(tree) == "a(b(c))"

    def test_random_tree_deterministic(self):
        assert random_tree(9, ["a", "b"], seed_or_rng=5) == random_tree(
            9, ["a", "b"], seed_or_rng=5
        )

    def test_random_tree_respects_arity(self):
        tree = random_tree(15, ["a"], max_arity=2, seed_or_rng=1)
        assert tree.rank() <= 2
        assert tree.size == 15


class TestCircuits:
    def test_binary_circuit_is_full(self):
        tree = random_binary_circuit(3, 7)
        assert all(tree.arity_at(p) in (0, 2) for p in tree.nodes())
        assert all(
            tree.label_at(p) in ("AND", "OR", "0", "1") for p in tree.nodes()
        )

    def test_evaluation(self):
        from repro.trees.tree import Tree

        assert evaluate_circuit(Tree.parse("AND(1, OR(0, 1))")) == 1
        assert evaluate_circuit(Tree.parse("AND(1, OR(0, 0))")) == 0
        assert evaluate_circuit(Tree.parse("1")) == 1

    def test_evaluation_rejects_bad_labels(self):
        from repro.trees.tree import Tree

        with pytest.raises(ValueError):
            evaluate_circuit(Tree.parse("XOR(1, 0)"))

    def test_unranked_circuit_arity_bound(self):
        tree = random_unranked_circuit(3, max_arity=5, seed_or_rng=2)
        assert tree.rank() <= 5


class TestEnumeration:
    def test_counts(self):
        # Trees over one label: 1 of size 1, 1 of size 2, 2 of size 3
        # (chain and two-children), ... Catalan-ish.
        trees = enumerate_trees(["a"], 3)
        sizes = sorted(t.size for t in trees)
        assert sizes == [1, 2, 3, 3]

    def test_two_labels(self):
        trees = enumerate_trees(["a", "b"], 2)
        assert len(trees) == 2 + 4  # two leaves, four two-node trees

    def test_rank_bound(self):
        trees = enumerate_trees(["a"], 4, max_arity=1)
        # Only chains: exactly one per size.
        assert sorted(t.size for t in trees) == [1, 2, 3, 4]

    def test_all_distinct(self):
        trees = enumerate_trees(["a", "b"], 3)
        assert len(trees) == len(set(trees))
