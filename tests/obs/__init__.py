"""The observability layer."""
