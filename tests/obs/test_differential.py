"""Instrumentation must be observationally inert: on vs off, same results.

Every engine is run twice — once under the null sink, once under a
recording :class:`repro.obs.Stats` — and the outputs are compared for
equality.  The recording runs double as coverage that the counters named
in the ``DESIGN.md`` glossary actually fire on the committed example
workloads.
"""

import pytest

from repro import obs
from repro.core.pipeline import Document, pattern_cache_clear
from repro.decision.closure import containment_counterexample, query_witness
from repro.decision.strings import string_query_witness
from repro.perf import fast_evaluate
from repro.strings.examples import (
    multi_sweep_query_automaton,
    odd_ones_query_automaton,
)
from repro.trees.dtd import BIBLIOGRAPHY_DTD, parse_dtd
from repro.trees.xml import BIBLIOGRAPHY_EXAMPLE
from repro.unranked.examples import circuit_query_automaton, first_one_sqa
from repro.unranked.twoway import UnrankedQueryAutomaton

WORDS = ["", "0", "1", "0110", "111010", "0101101", "1" * 9, "01" * 8]


def with_and_without_stats(run):
    """(plain result, instrumented result, the Stats that recorded it)."""
    plain = run()
    stats = obs.Stats()
    with obs.collecting(stats):
        instrumented = run()
    return plain, instrumented, stats


class TestStringEngineDifferential:
    @pytest.mark.parametrize(
        "make_qa", [odd_ones_query_automaton, lambda: multi_sweep_query_automaton(3)]
    )
    def test_fast_evaluate_identical(self, make_qa):
        qa = make_qa()

        def run():
            return [fast_evaluate(qa, word) for word in WORDS]

        plain, instrumented, stats = with_and_without_stats(run)
        assert plain == instrumented
        assert stats.counter("strings.evaluations") == len(WORDS)
        assert stats.counter("table.sweeps") > 0
        # per sweep: hits + misses == positions.
        assert (
            stats.counter("table.intern_hits")
            + stats.counter("table.intern_misses")
            == stats.counter("table.positions")
        )

    def test_string_decision_identical(self):
        qa = odd_ones_query_automaton()

        def run():
            return string_query_witness(qa, "01")

        plain, instrumented, stats = with_and_without_stats(run)
        assert plain == instrumented
        assert stats.counter("antichain.searches") == 1


class TestPipelineDifferential:
    def test_select_identical_and_caches_hit(self):
        dtd = parse_dtd(BIBLIOGRAPHY_DTD)

        def run():
            document = Document.from_text(BIBLIOGRAPHY_EXAMPLE, dtd)
            return [document.select("//author") for _ in range(3)]

        plain, instrumented, stats = with_and_without_stats(run)
        assert plain == instrumented
        assert plain[0]  # the pattern actually matches something
        assert stats.counter("pipeline.selects") == 3
        # A warm cache: repeats of the same (pattern, alphabet) must hit.
        assert stats.counter("pipeline.pattern_cache_hits") > 0

    def test_cold_cache_counts_a_miss(self):
        pattern_cache_clear()
        document = Document.from_text(BIBLIOGRAPHY_EXAMPLE)
        with obs.collecting() as stats:
            document.select("//title")
            document.select("//title")
        assert stats.counter("pipeline.pattern_cache_misses") == 1
        assert stats.counter("pipeline.pattern_cache_hits") == 1


class TestDecisionDifferential:
    def test_query_witness_identical_and_prunes(self):
        qa = circuit_query_automaton()

        def run():
            return query_witness(qa)

        plain, instrumented, stats = with_and_without_stats(run)
        assert plain == instrumented
        assert stats.counter("closure.runs") == 1
        assert stats.counter("closure.scans") > 0
        # The packed engine's subsumption pruning fires on this workload.
        assert stats.counter("closure.prunes") > 0

    def test_containment_identical(self):
        full = circuit_query_automaton()
        gates_only = UnrankedQueryAutomaton(
            full.automaton,
            frozenset(pair for pair in full.selecting if pair[0] != "u"),
        )

        def run():
            return containment_counterexample(full, gates_only)

        plain, instrumented, stats = with_and_without_stats(run)
        assert plain == instrumented
        assert stats.counter("closure.prunes") > 0

    def test_sqa_witness_identical(self):
        qa = first_one_sqa()

        def run():
            return query_witness(qa)

        plain, instrumented, stats = with_and_without_stats(run)
        assert plain == instrumented
        assert stats.counter("closure.prunes") > 0
