"""The stats sink machinery: sinks, reports, and the module-level switch."""

import pytest

from repro import obs
from repro.obs import NULL_SINK, NullSink, Stats, StatsSink


class TestNullSink:
    def test_disabled(self):
        assert NullSink().enabled is False
        assert NULL_SINK.enabled is False

    def test_all_operations_are_noops(self):
        sink = NullSink()
        sink.incr("a")
        sink.incr("a", 5)
        sink.gauge_max("g", 3)
        sink.observe("s", 1.5)  # nothing raised, nothing stored

    def test_base_class_is_a_null_sink(self):
        sink = StatsSink()
        assert sink.enabled is False
        sink.incr("x")


class TestStats:
    def test_counters(self):
        stats = Stats()
        stats.incr("hits")
        stats.incr("hits", 2)
        assert stats.counter("hits") == 3
        assert stats.counter("absent") == 0

    def test_enabled(self):
        assert Stats().enabled is True

    def test_gauge_max_keeps_the_maximum(self):
        stats = Stats()
        stats.gauge_max("size", 3)
        stats.gauge_max("size", 7)
        stats.gauge_max("size", 5)
        assert stats.gauges["size"] == 7

    def test_observe_and_sample_stats(self):
        stats = Stats()
        for value in (1.0, 2.0, 6.0):
            stats.observe("lat", value)
        summary = stats.sample_stats("lat")
        assert summary["count"] == 3
        assert summary["total"] == pytest.approx(9.0)
        assert summary["mean"] == pytest.approx(3.0)
        assert summary["median"] == pytest.approx(2.0)
        assert summary["min"] == pytest.approx(1.0)
        assert summary["max"] == pytest.approx(6.0)

    def test_sample_stats_empty(self):
        assert Stats().sample_stats("none")["count"] == 0

    def test_span_records_a_sample(self):
        stats = Stats()
        with stats.span("work"):
            pass
        assert len(stats.samples["work"]) == 1
        assert stats.samples["work"][0] >= 0

    def test_span_records_on_exception(self):
        stats = Stats()
        with pytest.raises(ValueError):
            with stats.span("work"):
                raise ValueError("boom")
        assert len(stats.samples["work"]) == 1

    def test_report_shape(self):
        stats = Stats()
        stats.incr("c")
        stats.gauge_max("g", 1)
        with stats.span("s"):
            pass
        report = stats.report()
        assert set(report) == {"counters", "gauges", "spans", "caches"}
        assert report["counters"] == {"c": 1}
        assert report["gauges"] == {"g": 1}
        assert report["spans"]["s"]["count"] == 1


def _random_stats(seed: int) -> Stats:
    import random

    rng = random.Random(seed)
    stats = Stats()
    for _ in range(rng.randrange(12)):
        stats.incr(rng.choice("abcd"), rng.randrange(1, 9))
    for _ in range(rng.randrange(6)):
        stats.gauge_max(rng.choice("gh"), rng.uniform(0, 10))
    for _ in range(rng.randrange(6)):
        stats.observe(rng.choice("st"), rng.uniform(0, 1))
    return stats


class TestMerge:
    def test_counters_sum(self):
        left, right = Stats(), Stats()
        left.incr("c", 2)
        right.incr("c", 3)
        right.incr("only_right")
        left.merge(right)
        assert left.counter("c") == 5
        assert left.counter("only_right") == 1

    def test_gauges_max(self):
        left, right = Stats(), Stats()
        left.gauge_max("g", 7)
        right.gauge_max("g", 3)
        right.gauge_max("h", 9)
        left.merge(right)
        assert left.gauges == {"g": 7, "h": 9}

    def test_samples_concatenate(self):
        left, right = Stats(), Stats()
        left.observe("s", 1.0)
        right.observe("s", 2.0)
        right.observe("s", 3.0)
        left.merge(right)
        assert left.samples["s"] == [1.0, 2.0, 3.0]
        assert left.sample_stats("s")["count"] == 3

    def test_merge_accepts_snapshots(self):
        source = _random_stats(5)
        via_stats = Stats().merge(source)
        via_snapshot = Stats().merge(source.snapshot())
        assert via_stats.snapshot() == via_snapshot.snapshot()

    def test_snapshot_round_trip(self):
        source = _random_stats(11)
        rebuilt = Stats.from_snapshot(source.snapshot())
        assert rebuilt.snapshot() == source.snapshot()

    def test_snapshot_is_a_copy(self):
        stats = Stats()
        stats.incr("c")
        snap = stats.snapshot()
        stats.incr("c")
        assert snap["counters"]["c"] == 1

    def test_merge_is_associative(self):
        for seed in range(20):
            a, b, c = (
                _random_stats(3 * seed),
                _random_stats(3 * seed + 1),
                _random_stats(3 * seed + 2),
            )
            left = Stats().merge(a).merge(Stats().merge(b).merge(c))
            right = Stats().merge(Stats().merge(a).merge(b)).merge(c)
            # Counters and gauges are order-free; concatenated samples
            # keep their per-stream order under either association.
            assert left.snapshot() == right.snapshot()

    def test_merge_returns_self(self):
        stats = Stats()
        assert stats.merge(Stats()) is stats


class TestModuleSwitch:
    def test_default_sink_is_null(self):
        assert obs.sink() is NULL_SINK or not obs.enabled()

    def test_set_sink_returns_previous(self):
        stats = Stats()
        previous = obs.set_sink(stats)
        try:
            assert obs.sink() is stats
            assert obs.enabled() is True
        finally:
            obs.set_sink(previous)
        assert obs.sink() is previous

    def test_collecting_installs_and_restores(self):
        before = obs.sink()
        with obs.collecting() as stats:
            assert obs.sink() is stats
            obs.SINK.incr("inside")
        assert obs.sink() is before
        assert stats.counter("inside") == 1

    def test_collecting_restores_on_exception(self):
        before = obs.sink()
        with pytest.raises(RuntimeError):
            with obs.collecting():
                raise RuntimeError("boom")
        assert obs.sink() is before

    def test_collecting_accepts_an_existing_stats(self):
        mine = Stats()
        with obs.collecting(mine) as stats:
            assert stats is mine


class TestCacheRegistry:
    def test_registered_caches_appear_in_reports(self):
        calls = []

        def provider():
            calls.append(1)
            return {"hits": 9}

        obs.register_cache("test.temp_cache", provider)
        try:
            report = Stats().report()
            assert report["caches"]["test.temp_cache"] == {"hits": 9}
            assert calls
        finally:
            obs.cache_providers().pop("test.temp_cache", None)

    def test_pipeline_pattern_cache_is_registered(self):
        import repro.core.pipeline  # noqa: F401 - registers its cache

        report = Stats().report()
        snapshot = report["caches"]["pipeline.cached_pattern"]
        assert set(snapshot) >= {"hits", "misses", "maxsize", "currsize"}
