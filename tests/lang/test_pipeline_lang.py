"""Query strings through the pipeline, the CLI, and the SQA path."""

import json

import pytest

from repro import obs
from repro.cli import main
from repro.core.pipeline import (
    Corpus,
    Document,
    batch_select,
    cached_pattern,
    pattern_cache_clear,
)
from repro.lang import compile_query_sqa, compile_query_string, split_prefix
from repro.trees.tree import Tree
from repro.trees.xml import BIBLIOGRAPHY_EXAMPLE

AUTHORS = [(0, 0), (0, 1), (0, 2), (1, 0)]


@pytest.fixture()
def document():
    return Document.from_text(BIBLIOGRAPHY_EXAMPLE)


@pytest.fixture()
def document_file(tmp_path):
    path = tmp_path / "bib.xml"
    path.write_text(BIBLIOGRAPHY_EXAMPLE)
    return str(path)


class TestPrefixDispatch:
    def test_split_prefix(self):
        assert split_prefix("xpath://a") == ("xpath", "//a")
        assert split_prefix("mso:lab_a(x)") == ("mso", "lab_a(x)")
        assert split_prefix("//a") == (None, "//a")

    def test_document_select_xpath(self, document):
        assert document.select("xpath://author") == AUTHORS

    def test_document_select_mso(self, document):
        assert document.select("mso:lab_author(x)") == AUTHORS

    def test_legacy_patterns_still_dispatch(self, document):
        # No prefix → the legacy core.patterns compiler, unchanged.
        assert document.select("//author") == AUTHORS

    def test_all_three_syntaxes_agree(self, document):
        queries = ("//author", "xpath://author", "mso:lab_author(x)")
        results = {q: document.select(q) for q in queries}
        assert len(set(map(tuple, results.values()))) == 1

    def test_select_accepts_every_engine(self, document):
        for engine in ("naive", "table", "numpy"):
            assert document.select("xpath://author", engine=engine) == AUTHORS
            got = document.select("mso:lab_author(x)", engine=engine)
            assert got == AUTHORS

    def test_corpus_select(self, document):
        corpus = Corpus([document, document])
        assert corpus.select("xpath://author") == [AUTHORS, AUTHORS]

    def test_batch_select(self, document):
        got = batch_select([document, document], "mso:lab_author(x)")
        assert got == [AUTHORS, AUTHORS]

    def test_syntax_errors_surface_from_select(self, document):
        from repro.lang import QuerySyntaxError

        with pytest.raises(QuerySyntaxError, match="unbalanced"):
            document.select("xpath://author[year")

    def test_prefix_requires_its_syntax(self, document):
        # An MSO formula under the xpath prefix is a syntax error, not a
        # silent fallback to another parser.
        from repro.lang import QuerySyntaxError

        with pytest.raises(QuerySyntaxError):
            document.select("xpath:lab_author(x)")


class TestPatternCache:
    def test_prefixed_strings_are_cached(self, document):
        pattern_cache_clear()
        document.select("xpath://author")
        document.select("xpath://author")
        info = cached_pattern.cache_info()
        assert info.misses == 1
        assert info.hits >= 1

    def test_prefixed_and_legacy_entries_are_distinct(self, document):
        pattern_cache_clear()
        document.select("//author")
        document.select("xpath://author")
        assert cached_pattern.cache_info().misses == 2


class TestObsCounters:
    def test_xpath_parse_counters(self, document):
        pattern_cache_clear()
        with obs.collecting() as stats:
            document.select("xpath://author[year]")
        counters = stats.snapshot()["counters"]
        assert counters["lang.xpath_parses"] == 1
        assert counters["lang.tokens"] > 0
        assert counters["lang.lowered_nodes"] > 0
        assert "lang.mso_parses" not in counters

    def test_mso_parse_counters(self, document):
        pattern_cache_clear()
        with obs.collecting() as stats:
            document.select("mso:lab_author(x)")
        counters = stats.snapshot()["counters"]
        assert counters["lang.mso_parses"] == 1
        assert "lang.xpath_parses" not in counters

    def test_syntax_errors_are_counted(self):
        with obs.collecting() as stats:
            with pytest.raises(Exception):
                compile_query_string("xpath://a[", ("a",))
        assert stats.snapshot()["counters"]["lang.syntax_errors"] == 1

    def test_cache_hits_skip_the_parser(self, document):
        pattern_cache_clear()
        document.select("xpath://author")
        with obs.collecting() as stats:
            document.select("xpath://author")
        assert "lang.xpath_parses" not in stats.snapshot()["counters"]


class TestSQAPath:
    # The Theorem 5.17 automaton assumes inner nodes have >= 2 children,
    # so the trees here keep every inner node at least binary.
    TREE = Tree.parse("a(b(c, c), b)")

    def test_xpath_compiles_to_a_query_automaton(self):
        sqa = compile_query_sqa("xpath://b", ("a", "b", "c"))
        assert type(sqa).__name__ == "UnrankedQueryAutomaton"
        assert sorted(sqa.evaluate(self.TREE)) == [(0,), (1,)]

    def test_mso_compiles_to_a_query_automaton(self):
        sqa = compile_query_sqa("mso:lab_b(x) & leaf(x)", ("a", "b", "c"))
        assert sorted(sqa.evaluate(self.TREE)) == [(1,)]

    def test_legacy_patterns_route_through_too(self):
        sqa = compile_query_sqa("//b", ("a", "b", "c"))
        assert sorted(sqa.evaluate(self.TREE)) == [(0,), (1,)]


class TestCLI:
    def test_query_xpath_flag(self, document_file, capsys):
        assert main(["query", document_file, "--xpath", "//author"]) == 0
        out = capsys.readouterr().out
        assert "/0/0:" in out

    def test_query_mso_flag(self, document_file, capsys):
        assert main(["query", document_file, "--mso", "lab_author(x)"]) == 0
        out = capsys.readouterr().out
        assert "/0/0:" in out

    def test_flags_and_positional_agree(self, document_file, capsys):
        main(["query", document_file, "//author"])
        legacy = capsys.readouterr().out
        main(["query", document_file, "--xpath", "//author"])
        xpath = capsys.readouterr().out
        main(["query", document_file, "--mso", "lab_author(x)"])
        mso = capsys.readouterr().out
        assert legacy == xpath == mso

    def test_query_xpath_flag_with_stats(self, document_file, capsys):
        pattern_cache_clear()  # so the parse (and its counters) happen
        code = main(
            ["query", document_file, "--xpath", "//author", "--stats"]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "/0/0:" in captured.out
        payload = captured.err[captured.err.index("{") :]
        counters = json.loads(payload)["counters"]
        assert counters["lang.xpath_parses"] == 1

    def test_query_with_engine(self, document_file, capsys):
        code = main(
            [
                "query",
                document_file,
                "--xpath",
                "//author",
                "--engine",
                "numpy",
            ]
        )
        assert code == 0
        assert "/0/0:" in capsys.readouterr().out

    def test_syntax_error_exits_2_with_a_caret(self, document_file, capsys):
        assert main(["query", document_file, "--xpath", "//author["]) == 2
        err = capsys.readouterr().err
        assert "invalid query" in err
        assert "^" in err

    def test_missing_query_exits_2(self, document_file, capsys):
        assert main(["query", document_file]) == 2
        assert "missing query" in capsys.readouterr().err

    def test_xpath_and_mso_are_mutually_exclusive(self, document_file, capsys):
        with pytest.raises(SystemExit):
            main(
                [
                    "query",
                    document_file,
                    "--xpath",
                    "//a",
                    "--mso",
                    "lab_a(x)",
                ]
            )

    def test_profile_xpath_flag(self, document_file, capsys):
        code = main(
            ["profile", "--document", document_file, "--xpath", "//author"]
        )
        assert code == 0
        assert "xpath://author" in capsys.readouterr().out
