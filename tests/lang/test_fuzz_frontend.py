"""Fuzzing the query-string frontend: mutations never escape the error type.

Seeded byte- and token-level mutations of *valid* XPath and MSO query
strings are thrown at the parsers, the lowerers and the prefix
dispatcher.  A mutant may still be a valid query (fine), or it must
raise :class:`~repro.lang.errors.QuerySyntaxError` — never a
``RecursionError``, ``IndexError`` or any other leaked internal error,
and never a hang.  Every syntax error must locate itself inside the
input it was given.

The default budget (``REPRO_FUZZ_COUNT=300`` mutants per corpus) is the
quick deterministic slice CI runs; crank the env var for a longer soak.
The generator is seeded per mutant index, so any failure reproduces by
index alone.
"""

from __future__ import annotations

import os
import random
import re

import pytest

from repro.lang import compile_query_string
from repro.lang.errors import QuerySyntaxError
from repro.lang.mso import parse_mso_query
from repro.lang.xpath import lower_xpath, parse_xpath

COUNT = int(os.environ.get("REPRO_FUZZ_COUNT", "300"))
ALPHABET = ("a", "b", "c", "d")
MAX_LEN = 100

XPATH_SEEDS = (
    "//a[b and not(c)]/d",
    "/a/b[c][d]/../.",
    "//a[b[c] and not(d) or e]",
    "//a/following-sibling::b[not(c)]",
    "//*[a or b]/child::c",
    "//a[preceding-sibling::b]",
)

MSO_SEEDS = (
    "lab_a(x)",
    "leaf(x) & !lab_d(x)",
    "lab_b(x) & exists y. child(y, x)",
    "forall y. lab_b(y) -> exists z. lab_a(z) & desc(z, x)",
    "exists Y. x in Y & forall z. z in Y -> !lab_c(z)",
    "root(x) | (first(x) & last(x))",
)

#: Characters the byte-level mutator splices in: everything the two
#: grammars use, plus chars neither should ever accept silently.
CHARS = tuple("abcdexyzXY_0189()[]{}/:.,&|!<>=-*@ \t\n") + ('"', "λ", "\x00")

#: Grammar fragments the token-level mutator splices in.
SPLICE = ("(", ")", "[", "]", "and", "or", "not", "::", "..", "//",
          "exists", "forall", "->", "&", "!", "in", "lab_", "x", ".")

_TOKENS = re.compile(r"\w+|\s+|.")


def _mutate_bytes(rng: random.Random, source: str) -> str:
    out = source
    for _ in range(rng.randrange(1, 4)):
        position = rng.randrange(len(out) + 1)
        op = rng.randrange(3)
        if op == 0:
            out = out[:position] + rng.choice(CHARS) + out[position:]
        elif out:
            position = rng.randrange(len(out))
            tail = out[position + 1 :]
            if op == 1:
                out = out[:position] + tail
            else:
                out = out[:position] + rng.choice(CHARS) + tail
    return out[:MAX_LEN]


def _mutate_tokens(rng: random.Random, source: str) -> str:
    tokens = _TOKENS.findall(source)
    for _ in range(rng.randrange(1, 3)):
        if not tokens:
            break
        op = rng.randrange(4)
        i = rng.randrange(len(tokens))
        if op == 0:
            del tokens[i]
        elif op == 1:
            tokens.insert(i, tokens[rng.randrange(len(tokens))])
        elif op == 2:
            j = rng.randrange(len(tokens))
            tokens[i], tokens[j] = tokens[j], tokens[i]
        else:
            tokens[i] = rng.choice(SPLICE)
    return "".join(tokens)[:MAX_LEN]


def _mutant(rng: random.Random, seeds: tuple[str, ...]) -> str:
    source = rng.choice(seeds)
    return (
        _mutate_bytes(rng, source)
        if rng.random() < 0.5
        else _mutate_tokens(rng, source)
    )


def _check_error(error: QuerySyntaxError, source: str) -> None:
    """The locating invariants every frontend error must satisfy."""
    assert 0 <= error.offset <= len(error.source), vars(error)
    assert error.source == "" or error.source in source, (
        error.source,
        source,
    )
    assert error.line >= 1 and error.column >= 1


def test_seed_corpora_are_valid():
    """The mutation baselines really are accepted queries."""
    for source in XPATH_SEEDS:
        lower_xpath(parse_xpath(source), ALPHABET)
    for source in MSO_SEEDS:
        parse_mso_query(source)


def test_fuzz_xpath_parser_and_lowerer():
    for index in range(COUNT):
        rng = random.Random(index)
        source = _mutant(rng, XPATH_SEEDS)
        try:
            lower_xpath(parse_xpath(source), ALPHABET)
        except QuerySyntaxError as error:
            _check_error(error, source)


def test_fuzz_mso_parser():
    for index in range(COUNT):
        rng = random.Random(10_000 + index)
        source = _mutant(rng, MSO_SEEDS)
        try:
            parse_mso_query(source)
        except QuerySyntaxError as error:
            _check_error(error, source)


@pytest.mark.parametrize("prefix,seeds", [
    ("xpath:", XPATH_SEEDS),
    ("mso:", MSO_SEEDS),
])
def test_fuzz_prefixed_compile(prefix, seeds):
    """The full dispatcher path, prefix preserved: parse, lower, compile.

    A smaller slice than the parser fuzzers — valid mutants pay for a
    whole automaton construction here.
    """
    for index in range(max(COUNT // 6, 25)):
        rng = random.Random(20_000 + index)
        source = prefix + _mutant(rng, seeds)
        try:
            compile_query_string(source, ALPHABET)
        except QuerySyntaxError as error:
            _check_error(error, source)


def test_pathological_inputs_fail_cleanly():
    """Depth and garbage extremes: flat errors, no recursion blowups."""
    cases = [
        "(" * 2000,
        "//a" + "[b" * 500,
        "[" * 300 + "]" * 300,
        "//a/" * 400,
        "!" * 1000 + "lab_a(x)",
        "exists y. " * 200 + "lab_a(y)",
        "\x00\xff λλλ ::[",
        "",
        " ",
    ]
    for body in cases:
        for driver in (
            lambda s: lower_xpath(parse_xpath(s), ALPHABET),
            parse_mso_query,
        ):
            try:
                driver(body)
            except QuerySyntaxError as error:
                _check_error(error, body)
