"""The MSO surface syntax: parsing, typing rules, and error locations."""

import pytest

from repro.lang import QuerySyntaxError, mso_query, parse_mso, parse_mso_query
from repro.logic.syntax import (
    And,
    Descendant,
    Edge,
    Equal,
    Exists,
    ExistsSet,
    Forall,
    Implies,
    Label,
    Less,
    Member,
    Not,
    Or,
    SetVar,
    Var,
)
from repro.trees.tree import Tree

TREE = Tree.parse("a(b(c), a(b), b)")
ALPHABET = ("a", "b", "c")

x, y = Var("x"), Var("y")
X = SetVar("X")


def run(source):
    return sorted(mso_query(source, ALPHABET).evaluate(TREE))


class TestParsing:
    def test_atoms(self):
        assert parse_mso("lab_a(x)") == Label(x, "a")
        assert parse_mso("child(x, y)") == Edge(x, y)
        assert parse_mso("desc(x, y)") == Descendant(x, y)
        assert parse_mso("x < y") == Less(x, y)
        assert parse_mso("x = y") == Equal(x, y)
        assert parse_mso("x != y") == Not(Equal(x, y))
        assert parse_mso("x in X") == Member(x, X)

    def test_precedence(self):
        formula = parse_mso("lab_a(x) | lab_b(x) & !lab_c(x) -> lab_a(x)")
        assert isinstance(formula, Implies)
        assert isinstance(formula.left, Or)
        assert isinstance(formula.left.right, And)
        assert isinstance(formula.left.right.right, Not)

    def test_implies_is_right_associative(self):
        formula = parse_mso("lab_a(x) -> lab_b(x) -> lab_c(x)")
        assert isinstance(formula, Implies)
        assert isinstance(formula.right, Implies)

    def test_quantifier_case_picks_the_kind(self):
        fo = parse_mso("exists y. child(y, x)")
        assert fo == Exists(y, Edge(y, x))
        so = parse_mso("exists X. x in X")
        assert so == ExistsSet(X, Member(x, X))

    def test_quantifier_scope_extends_maximally_right(self):
        formula = parse_mso("lab_a(x) & forall y. child(x, y) -> lab_b(y)")
        assert isinstance(formula, And)
        assert formula.right == Forall(y, Implies(Edge(x, y), Label(y, "b")))

    def test_parentheses_bound_quantifier_scope(self):
        formula = parse_mso("(exists y. child(x, y)) & lab_a(x)")
        assert formula == And(Exists(y, Edge(x, y)), Label(x, "a"))

    def test_derived_predicates_expand(self):
        for source in ("root(x)", "leaf(x)", "first(x)", "last(x)"):
            formula = parse_mso(source)
            assert formula.free_vars() == frozenset({x})
        formula = parse_mso("next_sibling(x, y)")
        assert formula.free_vars() == frozenset({x, y})

    def test_multiline_formulas_parse(self):
        formula = parse_mso("lab_a(x) &\n  exists y.\n    child(x, y)")
        assert formula == And(Label(x, "a"), Exists(y, Edge(x, y)))


class TestErrors:
    @pytest.mark.parametrize("source", ["", "  ", " \n "])
    def test_empty_query(self, source):
        with pytest.raises(QuerySyntaxError, match="empty query"):
            parse_mso(source)

    @pytest.mark.parametrize(
        "source, offset, fragment",
        [
            ("lab_a(x) &", 10, "expected an atom"),
            ("child(x)", 7, "expected ','"),
            ("frob(x)", 0, "unknown predicate 'frob'"),
            ("lab_(x)", 0, "'lab_' needs a label"),
            ("exists x lab_a(x)", 9, "expected '\\.'"),
            ("exists in. lab_a(x)", 7, "keyword"),
            ("lab_a(X)", 6, "set variable"),
            ("x in y", 5, "not a set variable"),
            ("x lab_a", 2, "expected a relation"),
            ("(lab_a(x)", 0, "unbalanced '\\('"),
            ("(lab_a(x) | lab_b(x)]", 20, "unexpected character '\\]'"),
            ("lab_a(x) @", 9, "unexpected character '@'"),
        ],
    )
    def test_offsets_are_exact(self, source, offset, fragment):
        with pytest.raises(QuerySyntaxError, match=fragment) as excinfo:
            parse_mso(source)
        assert excinfo.value.offset == offset

    def test_line_and_column_on_multiline_sources(self):
        with pytest.raises(QuerySyntaxError) as excinfo:
            parse_mso("lab_a(x) &\n  frob(y)")
        assert excinfo.value.line == 2
        assert excinfo.value.column == 3

    def test_deep_negation_is_bounded(self):
        with pytest.raises(QuerySyntaxError, match="depth limit"):
            parse_mso("!" * 300 + "lab_a(x)")

    def test_deep_parens_are_bounded(self):
        with pytest.raises(QuerySyntaxError, match="depth limit"):
            parse_mso("(" * 300 + "lab_a(x)" + ")" * 300)

    def test_deep_quantifiers_are_bounded(self):
        source = " ".join(f"exists y{i}." for i in range(300)) + " lab_a(x)"
        with pytest.raises(QuerySyntaxError, match="depth limit"):
            parse_mso(source)


class TestQueryTyping:
    def test_one_free_variable_is_the_selected_node(self):
        formula, var = parse_mso_query("lab_b(x) & exists y. child(y, x)")
        assert var == x
        assert formula.free_vars() == frozenset({x})

    def test_sentences_are_rejected(self):
        with pytest.raises(QuerySyntaxError, match="sentence"):
            parse_mso_query("forall x. lab_a(x)")

    def test_two_free_variables_are_rejected_at_the_second(self):
        source = "lab_a(x) & lab_b(y)"
        with pytest.raises(QuerySyntaxError, match="found 2: x, y") as excinfo:
            parse_mso_query(source)
        assert excinfo.value.offset == source.index("y")

    def test_free_set_variables_are_rejected_where_first_used(self):
        source = "x in X"
        with pytest.raises(QuerySyntaxError, match="free set variable 'X'") as excinfo:
            parse_mso_query(source)
        assert excinfo.value.offset == source.index("X")


class TestSemantics:
    @pytest.mark.parametrize(
        "source, expected",
        [
            ("lab_c(x)", [(0, 0)]),
            ("lab_b(x) & !exists y. child(x, y)", [(1, 0), (2,)]),
            ("root(x)", [()]),
            ("leaf(x)", [(0, 0), (1, 0), (2,)]),
            ("exists y. child(x, y) & lab_c(y)", [(0,)]),
            ("exists y. desc(y, x) & lab_b(y)", [(0, 0)]),
            ("first(x) & !root(x)", [(0,), (0, 0), (1, 0)]),
            ("exists y. next_sibling(x, y) & lab_b(y)", [(1,)]),
            ("forall y. child(x, y) -> lab_b(y)", [(0, 0), (1,), (1, 0), (2,)]),
            ("exists X. x in X & lab_a(x)", [(), (1,)]),
            ("true & lab_c(x)", [(0, 0)]),
            ("false & lab_c(x)", []),
            ("x = x & last(x)", [(), (0, 0), (1, 0), (2,)]),
            ("exists y. y < x", [(1,), (2,)]),
        ],
    )
    def test_selections(self, source, expected):
        assert run(source) == expected
