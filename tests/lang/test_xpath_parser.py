"""The XPath fragment: parsing, error locations, and lowering shape."""

import pytest

from repro.lang import QuerySyntaxError, lower_xpath, parse_xpath, xpath_query
from repro.lang.xpath import LocationPath, PredAnd, PredNot, PredOr, PredPath, Step
from repro.trees.tree import Tree

TREE = Tree.parse("a(b(c), a(b), b)")
ALPHABET = ("a", "b", "c")


def run(source):
    return sorted(xpath_query(source, ALPHABET).evaluate(TREE))


class TestParsing:
    def test_single_step(self):
        path = parse_xpath("/book")
        assert path == LocationPath(steps=(Step("child", "book", (), 1),))

    def test_abbreviations(self):
        steps = parse_xpath("//a/../.").steps
        assert [(s.axis, s.test) for s in steps] == [
            ("descendant", "a"),
            ("parent", "*"),
            ("self", "*"),
        ]

    def test_explicit_axes(self):
        steps = parse_xpath(
            "/a/following-sibling::b/preceding-sibling::*/ancestor::c"
        ).steps
        assert [s.axis for s in steps] == [
            "child",
            "following-sibling",
            "preceding-sibling",
            "ancestor",
        ]

    def test_root_only(self):
        assert parse_xpath("/") == LocationPath(steps=())
        assert parse_xpath(" / ") == LocationPath(steps=())

    def test_predicates_nest(self):
        (step,) = parse_xpath("//a[b[c] and not(d) or e]").steps
        (predicate,) = step.predicates
        assert isinstance(predicate, PredOr)
        assert isinstance(predicate.left, PredAnd)
        assert isinstance(predicate.left.right, PredNot)
        assert isinstance(predicate.right, PredPath)

    def test_whitespace_is_free(self):
        def strip(node):
            if isinstance(node, LocationPath):
                return tuple(strip(step) for step in node.steps)
            if isinstance(node, Step):
                return (node.axis, node.test, tuple(strip(p) for p in node.predicates))
            if isinstance(node, PredPath):
                return ("path", strip(node.path))
            if isinstance(node, PredNot):
                return ("not", strip(node.inner))
            return (type(node).__name__, strip(node.left), strip(node.right))

        assert strip(parse_xpath(" //a [ b and c ] ")) == strip(
            parse_xpath("//a[b and c]")
        )

    def test_keyword_labels_are_plain_labels(self):
        # "and"/"or"/"not" are only operators in operator position.
        (step,) = parse_xpath("//and[or and not]").steps
        assert step.test == "and"
        (predicate,) = step.predicates
        assert isinstance(predicate, PredAnd)
        assert predicate.left == PredPath(
            LocationPath((Step("child", "or", (), 6),), absolute=False)
        )
        assert predicate.right.path.steps[0].test == "not"

    def test_not_requires_parenthesis_to_be_a_function(self):
        (step,) = parse_xpath("//a[not(b)]").steps
        assert isinstance(step.predicates[0], PredNot)
        (step,) = parse_xpath("//a[not]").steps
        assert isinstance(step.predicates[0], PredPath)


class TestErrors:
    @pytest.mark.parametrize("source", ["", "   ", "\t\n"])
    def test_empty_query(self, source):
        with pytest.raises(QuerySyntaxError, match="empty query"):
            parse_xpath(source)

    @pytest.mark.parametrize(
        "source, offset, fragment",
        [
            ("book", 0, "must start with"),
            ("//b[", 4, "expected a step"),
            ("//b[a", 3, "unbalanced '\\['"),  # points at the opener at EOF
            ("//b]", 3, "unexpected"),
            ("//b[not(a]", 9, "unbalanced '\\('"),
            ("//b[not(a", 7, "unbalanced '\\('"),  # points at the opener at EOF
            ("//b[(a or b]", 11, "unbalanced '\\('"),
            ("//b[]", 4, "empty predicate"),
            ("/a/child::", 10, "expected a label"),
            ("/a/following::b", 3, "unknown axis 'following'"),
            ("//b[a $ b]", 6, "unexpected character '\\$'"),
            ("//self::a", 2, "explicit axis after '//'"),
            ("/a//b[", 6, "expected a step"),
        ],
    )
    def test_offsets_are_exact(self, source, offset, fragment):
        with pytest.raises(QuerySyntaxError, match=fragment) as excinfo:
            parse_xpath(source)
        assert excinfo.value.offset == offset
        assert excinfo.value.source == source

    def test_unknown_axis_lists_the_axes(self):
        with pytest.raises(QuerySyntaxError, match="following-sibling"):
            parse_xpath("/a/descendent::b")

    def test_absolute_path_in_predicate(self):
        with pytest.raises(QuerySyntaxError, match="absolute paths"):
            parse_xpath("//a[/b]")

    def test_rendered_error_shows_a_caret(self):
        with pytest.raises(QuerySyntaxError) as excinfo:
            parse_xpath("//b[not(a]")
        message = str(excinfo.value)
        assert "//b[not(a]" in message
        assert message.splitlines()[-1].strip() == "^"

    def test_deep_nesting_is_a_syntax_error_not_a_crash(self):
        source = "//a" + "[b" * 300 + "]" * 300
        with pytest.raises(QuerySyntaxError, match="depth limit"):
            parse_xpath(source)

    def test_deep_parens_are_bounded_too(self):
        source = "//a[" + "(" * 300 + "b" + ")" * 300 + "]"
        with pytest.raises(QuerySyntaxError, match="depth limit"):
            parse_xpath(source)

    def test_nesting_within_the_limit_parses(self):
        depth = 60
        source = "//a" + "[b" * depth + "]" * depth
        assert len(parse_xpath(source).steps) == 1


class TestSemantics:
    @pytest.mark.parametrize(
        "source, expected",
        [
            ("/", [()]),
            ("/a", [()]),
            ("/b", []),
            ("/a/b", [(0,), (2,)]),
            ("/a/a/b", [(1, 0)]),
            ("//b", [(0,), (1, 0), (2,)]),
            ("//a", [(), (1,)]),  # descendant-or-self includes the root
            ("//*", [(), (0,), (0, 0), (1,), (1, 0), (2,)]),
            ("/.", [()]),
            ("/./b", [(0,), (2,)]),
            ("//b/..", [(), (1,)]),
            ("//b[not(c)]", [(1, 0), (2,)]),
            ("//a/following-sibling::b", [(2,)]),
            ("//b/preceding-sibling::*", [(0,), (1,)]),
            ("//b/ancestor::a", [(), (1,)]),
            ("/parent::a", []),  # the document root has no parent
            ("//c/../..", [()]),
            ("//*[b and c]", []),
            ("//*[b or c]", [(), (0,), (1,)]),
            ("//and", []),
            ("//a/self::*[b]", [(), (1,)]),
            ("//b//c", [(0, 0)]),
            ("//b/c", [(0, 0)]),
        ],
    )
    def test_selections(self, source, expected):
        assert run(source) == expected

    def test_lowered_formula_has_one_free_variable(self):
        formula, var = lower_xpath(parse_xpath("//a[b]/c"), ALPHABET)
        assert formula.free_vars() == frozenset({var})
        assert not formula.free_set_vars()

    def test_star_works_over_an_empty_alphabet(self):
        formula, var = lower_xpath(parse_xpath("//*"), ())
        assert formula.free_vars() == frozenset({var})
