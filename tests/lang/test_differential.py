"""Seeded differential suite: parsed queries ≡ hand-built AST twins.

Every query builds a random *spec*, renders it to a query string, and
independently lowers the spec to a hand-assembled
:mod:`repro.logic.syntax` formula — the twin.  The twin construction is
deliberately different in style from the production lowering (forward
node-chain with ``Equal`` for ``self`` steps, rather than the
reverse-walk with self-step normalization), so structural bugs in either
cannot cancel out.  The parsed query and the twin must select identical
node sets under ``engine="naive"``, ``"table"``, and ``"numpy"``, and
must agree with the direct logic-semantics oracle
(:func:`repro.logic.semantics.tree_query`).

A *case* is one (query, tree) pair; each query runs over
:data:`TREES_PER_QUERY` trees, and over 200 seeded cases run in total
(see ``test_case_count_meets_the_floor``).  Specs are filtered to
formula *width* ≤ 2 — the maximum number of simultaneously-free
variables, which the marked-alphabet construction is exponential in —
to keep compilation affordable; the width-3+ regions of the grammar are
covered semantically by the hand-picked selections in the parser tests.
"""

import random

import pytest

from repro.core.query import MSOQuery
from repro.lang import compile_query_string
from repro.logic.semantics import tree_query
from repro.logic.syntax import (
    And,
    Descendant,
    Edge,
    Equal,
    Exists,
    ExistsSet,
    Forall,
    ForallSet,
    Formula,
    Label,
    Less,
    Member,
    Not,
    Or,
    SetVar,
    Var,
    false_formula,
    fresh_var,
    root,
)
from repro.perf.batch import evaluate_one
from repro.trees.tree import Tree

SEED = 20260807
XPATH_QUERIES = 55
MSO_QUERIES = 50
TREES_PER_QUERY = 2
ENGINES = ("naive", "table", "numpy")
ALPHABET = ("a", "b", "c")

TREES = [
    Tree.parse(text)
    for text in (
        "a(b, c)",
        "a(b(c), a(b), b)",
        "b(a(a, b), c)",
        "c(c(c), b)",
        "a(a(b, c), c(a), b)",
        "b",
    )
]

X = Var("x")


def _width(formula: Formula) -> int:
    """Max simultaneously-free variables over all subformulas."""
    widest = len(formula.free_vars()) + len(formula.free_set_vars())
    for name in ("inner", "left", "right"):
        child = getattr(formula, name, None)
        if isinstance(child, Formula):
            widest = max(widest, _width(child))
    return widest


# ----------------------------------------------------------------------
# XPath specs: generation, rendering, twin lowering
# ----------------------------------------------------------------------

# A spec is a list of (axis, test, predicates); a predicate is
# ("path", [spec steps]) | ("not", pred) | ("and"|"or", pred, pred).

_CHAIN_AXES = ("child", "descendant", "parent", "self", "following-sibling")


def _random_pred(rng, depth):
    kind = rng.random()
    if depth <= 0 or kind < 0.6:
        step = (rng.choice(_CHAIN_AXES), rng.choice(ALPHABET + ("*",)), [])
        return ("path", [step])
    if kind < 0.75:
        return ("not", _random_pred(rng, depth - 1))
    op = rng.choice(["and", "or"])
    return (op, _random_pred(rng, depth - 1), _random_pred(rng, depth - 1))


def random_xpath_spec(rng):
    """1–2 steps, ≤1 predicate; the width filter keeps compiles cheap."""
    first_axis = rng.choice(
        ["child", "descendant", "descendant", "descendant", "parent"]
    )
    steps = [(first_axis, rng.choice(ALPHABET + ("*",)), [])]
    if rng.random() < 0.6:
        steps.append(
            (rng.choice(_CHAIN_AXES), rng.choice(ALPHABET + ("*",)), [])
        )
    if rng.random() < 0.55:
        index = rng.randrange(len(steps))
        axis, test, _ = steps[index]
        steps[index] = (axis, test, [_random_pred(rng, 1)])
    return steps


def _render_pred(pred):
    kind = pred[0]
    if kind == "path":
        parts = []
        for index, (axis, test, preds) in enumerate(pred[1]):
            assert not preds
            if index == 0:
                parts.append(test if axis == "child" else f"{axis}::{test}")
            elif axis == "child":
                parts.append(f"/{test}")
            elif axis == "descendant":
                parts.append(f"//{test}")
            else:
                parts.append(f"/{axis}::{test}")
        return "".join(parts)
    if kind == "not":
        return f"not({_render_pred(pred[1])})"
    return f"({_render_pred(pred[1])} {kind} {_render_pred(pred[2])})"


def render_xpath(steps):
    parts = []
    for index, (axis, test, preds) in enumerate(steps):
        if axis == "child":
            parts.append(f"/{test}")
        elif axis == "descendant":
            parts.append(f"//{test}")
        elif axis == "self" and test == "*" and not preds and index > 0:
            parts.append("/.")
        elif axis == "parent" and test == "*" and not preds and index > 0:
            parts.append("/..")
        else:
            parts.append(f"/{axis}::{test}")
        parts.extend(f"[{_render_pred(pred)}]" for pred in preds)
    return "".join(parts)


def _twin_link(axis, prev, node):
    if axis == "child":
        return Edge(prev, node)
    if axis == "descendant":
        return Descendant(prev, node)
    if axis == "self":
        return Equal(prev, node)
    if axis == "parent":
        return Edge(node, prev)
    if axis == "ancestor":
        return Descendant(node, prev)
    if axis == "following-sibling":
        return Less(prev, node)
    assert axis == "preceding-sibling"
    return Less(node, prev)


def _twin_constraints(node, test, preds):
    conjuncts = []
    if test != "*":
        conjuncts.append(Label(node, test))
    conjuncts.extend(_twin_pred(node, pred) for pred in preds)
    return conjuncts


def _twin_pred(node, pred):
    kind = pred[0]
    if kind == "not":
        return Not(_twin_pred(node, pred[1]))
    if kind == "and":
        return And(_twin_pred(node, pred[1]), _twin_pred(node, pred[2]))
    if kind == "or":
        return Or(_twin_pred(node, pred[1]), _twin_pred(node, pred[2]))
    steps = pred[1]
    nodes = [fresh_var("q") for _ in steps]
    conjuncts = []
    prev = node
    for (axis, test, preds), step_node in zip(steps, nodes):
        conjuncts.append(_twin_link(axis, prev, step_node))
        conjuncts.extend(_twin_constraints(step_node, test, preds))
        prev = step_node
    formula = conjuncts[0]
    for conjunct in conjuncts[1:]:
        formula = And(formula, conjunct)
    for step_node in reversed(nodes):
        formula = Exists(step_node, formula)
    return formula


def twin_xpath(steps):
    """Forward node-chain lowering of an absolute path spec to φ(x)."""
    first_axis = steps[0][0]
    if first_axis not in ("child", "descendant", "self"):
        return And(false_formula(), Equal(X, X))
    nodes = [fresh_var("d") for _ in steps[:-1]] + [X]
    conjuncts = []
    prev = None
    for index, ((axis, test, preds), node) in enumerate(zip(steps, nodes)):
        if index == 0:
            # The virtual document root: child/self pin the node to the
            # root element, descendant reaches every node.
            if axis in ("child", "self"):
                conjuncts.append(root(node))
        else:
            conjuncts.append(_twin_link(axis, prev, node))
        conjuncts.extend(_twin_constraints(node, test, preds))
        prev = node
    formula = Equal(X, X)
    for conjunct in conjuncts:
        formula = And(formula, conjunct)
    for node in reversed(nodes[:-1]):
        formula = Exists(node, formula)
    return formula


# ----------------------------------------------------------------------
# MSO specs: generation and rendering
# ----------------------------------------------------------------------


def _random_mso(rng, scope, sets, depth, counter):
    """A random core formula over the variables in scope."""
    if depth <= 0 or rng.random() < 0.35:
        choice = rng.random()
        var = rng.choice(scope)
        if sets and choice < 0.2:
            return Member(var, rng.choice(sets))
        if choice < 0.45:
            return Label(var, rng.choice(ALPHABET))
        other = rng.choice(scope)
        ctor = rng.choice([Edge, Descendant, Less, Equal])
        return ctor(var, other)
    choice = rng.random()
    if choice < 0.2:
        return Not(_random_mso(rng, scope, sets, depth - 1, counter))
    if choice < 0.65:
        ctor = rng.choice([And, Or])
        return ctor(
            _random_mso(rng, scope, sets, depth - 1, counter),
            _random_mso(rng, scope, sets, depth - 1, counter),
        )
    counter[0] += 1
    if rng.random() < 0.25:
        set_var = SetVar(f"S{counter[0]}")
        ctor = rng.choice([ExistsSet, ForallSet])
        return ctor(
            set_var,
            _random_mso(rng, scope, sets + [set_var], depth - 1, counter),
        )
    var = Var(f"y{counter[0]}")
    ctor = rng.choice([Exists, Forall])
    return ctor(var, _random_mso(rng, scope + [var], sets, depth - 1, counter))


def random_mso_spec(rng):
    """φ(x) = Label(x, σ) ∧ body — guarantees x is the one free variable."""
    body = _random_mso(rng, [X], [], 3, [0])
    return And(Label(X, rng.choice(ALPHABET)), body)


def render_mso(formula):
    """Fully parenthesized surface rendering of a core formula."""
    if isinstance(formula, Label):
        return f"lab_{formula.label}({formula.var.name})"
    if isinstance(formula, Edge):
        return f"child({formula.parent.name}, {formula.child.name})"
    if isinstance(formula, Descendant):
        return f"desc({formula.ancestor.name}, {formula.descendant.name})"
    if isinstance(formula, Less):
        return f"({formula.left.name} < {formula.right.name})"
    if isinstance(formula, Equal):
        return f"({formula.left.name} = {formula.right.name})"
    if isinstance(formula, Member):
        return f"({formula.var.name} in {formula.set_var.name})"
    if isinstance(formula, Not):
        return f"!({render_mso(formula.inner)})"
    if isinstance(formula, And):
        return f"({render_mso(formula.left)} & {render_mso(formula.right)})"
    if isinstance(formula, Or):
        return f"({render_mso(formula.left)} | {render_mso(formula.right)})"
    if isinstance(formula, (Exists, Forall)):
        word = "exists" if isinstance(formula, Exists) else "forall"
        # The outer parens bound the quantifier's maximal-right scope.
        return f"({word} {formula.var.name}. {render_mso(formula.inner)})"
    word = "exists" if isinstance(formula, ExistsSet) else "forall"
    return f"({word} {formula.set_var.name}. {render_mso(formula.inner)})"


# ----------------------------------------------------------------------
# The differential driver
# ----------------------------------------------------------------------


def _tree_picks(rng):
    return tuple(
        rng.randrange(len(TREES)) for _ in range(TREES_PER_QUERY)
    )


def _xpath_queries():
    rng = random.Random(SEED)
    queries = []
    while len(queries) < XPATH_QUERIES:
        spec = random_xpath_spec(rng)
        twin = twin_xpath(spec)
        if _width(twin) > 2 or twin.quantifier_depth() > 4:
            continue  # wide formulas make the automaton compile explode
        queries.append((render_xpath(spec), twin, _tree_picks(rng)))
    return queries


def _mso_queries():
    rng = random.Random(SEED + 1)
    queries = []
    while len(queries) < MSO_QUERIES:
        twin = random_mso_spec(rng)
        if _width(twin) > 2 or twin.quantifier_depth() > 4:
            continue
        queries.append((render_mso(twin), twin, _tree_picks(rng)))
    return queries


_XPATH = _xpath_queries()
_MSO = _mso_queries()


def _assert_differential(source, twin, tree_indices):
    parsed = compile_query_string(source, ALPHABET)
    twin_query = MSOQuery(twin, X, ALPHABET)
    for index in tree_indices:
        tree = TREES[index]
        oracle = tree_query(tree, twin, X)
        for engine in ENGINES:
            got = evaluate_one(parsed, tree, engine=engine)
            want = evaluate_one(twin_query, tree, engine=engine)
            assert got == want, (
                f"{source!r} diverges from its twin under engine={engine!r} "
                f"on tree {index}"
            )
            assert got == oracle, (
                f"{source!r} diverges from the logic oracle under "
                f"engine={engine!r} on tree {index}"
            )


class TestXPathDifferential:
    @pytest.mark.parametrize(
        "source, twin, tree_indices",
        _XPATH,
        ids=[f"x{index:03d}" for index in range(len(_XPATH))],
    )
    def test_parsed_equals_twin(self, source, twin, tree_indices):
        _assert_differential("xpath:" + source, twin, tree_indices)


class TestMSODifferential:
    @pytest.mark.parametrize(
        "source, twin, tree_indices",
        _MSO,
        ids=[f"m{index:03d}" for index in range(len(_MSO))],
    )
    def test_parsed_equals_twin(self, source, twin, tree_indices):
        _assert_differential("mso:" + source, twin, tree_indices)

    @pytest.mark.parametrize(
        "source, twin, tree_indices",
        _MSO[:25],
        ids=[f"s{index:03d}" for index in range(25)],
    )
    def test_parsed_is_structurally_the_twin(self, source, twin, tree_indices):
        from repro.lang import parse_mso

        assert parse_mso(source) == twin


def test_case_count_meets_the_floor():
    cases = (len(_XPATH) + len(_MSO)) * TREES_PER_QUERY
    assert cases >= 200
