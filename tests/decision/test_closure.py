"""Theorem 6.3: non-emptiness of query automata, via the behavior closure."""

import pytest

from repro.decision.closure import (
    JointClosure,
    language_is_empty,
    language_witness,
    query_is_empty,
    query_witness,
)
from repro.decision.convert import ranked_query_to_unranked, ranked_to_unranked
from repro.ranked.examples import circuit_acceptor, circuit_value_query
from repro.trees.generators import enumerate_trees
from repro.unranked.examples import circuit_query_automaton, first_one_sqa
from repro.unranked.twoway import (
    TwoWayUnrankedAutomaton,
    UnrankedQueryAutomaton,
    up_classifier_from_languages,
)


def ones_selector(select) -> UnrankedQueryAutomaton:
    """Walks to the leaves; 1-leaves turn to ``u``, 0-leaves to ``z``;
    internal nodes collapse to ``p``; selection is the given pair."""
    from repro.strings.dfa import DFA
    from repro.strings.simple_regex import constant_sequence

    labels = ("0", "1")
    states = frozenset({"s", "u", "z", "p"})
    pairs = frozenset((q, a) for q in ("u", "z", "p") for a in labels)
    transitions = {}
    for pair in pairs:
        transitions[(0, pair)] = 1
        transitions[(1, pair)] = 1
    everything = DFA.build({0, 1}, pairs, transitions, 0, {1})
    classifier = up_classifier_from_languages({"p": everything}, None, pairs)
    automaton = TwoWayUnrankedAutomaton(
        states=states,
        alphabet=frozenset(labels),
        initial="s",
        accepting=states,
        up_pairs=pairs,
        down_pairs=frozenset(("s", a) for a in labels),
        delta_leaf={("s", "1"): "u", ("s", "0"): "z"},
        delta_root={},
        up_classifier=classifier,
        down={("s", a): constant_sequence("s") for a in labels},
    )
    return UnrankedQueryAutomaton(automaton, frozenset({select}))


class TestLanguageEmptiness:
    def test_circuit_nonempty_with_witness(self):
        qa = circuit_query_automaton()
        witness = language_witness(qa.automaton)
        assert witness is not None
        assert qa.automaton.accepts(witness)

    def test_ranked_acceptor_nonempty(self):
        acceptor = ranked_to_unranked(circuit_acceptor())
        witness = language_witness(acceptor)
        assert witness is not None
        assert acceptor.accepts(witness)

    def test_empty_language_detected(self):
        """Make the circuit acceptor unsatisfiable: F = ∅."""
        from dataclasses import replace

        qa = circuit_query_automaton()
        rejecting = replace(qa.automaton, accepting=frozenset())
        assert language_is_empty(rejecting)

    def test_closure_agrees_with_enumeration(self):
        """Brute-force ground truth on a small tree universe."""
        qa = circuit_query_automaton()
        automaton = qa.automaton
        brute_nonempty = any(
            automaton.accepts(tree)
            for tree in enumerate_trees(["0", "1", "AND", "OR"], 3, max_arity=3)
        )
        assert (not language_is_empty(automaton)) == brute_nonempty


class TestQueryNonEmptiness:
    def test_circuit_query_witness(self):
        qa = circuit_query_automaton()
        result = query_witness(qa)
        assert result is not None
        tree, path = result
        assert path in qa.evaluate(tree)

    def test_stay_automaton_query_witness(self):
        """The SQA^u case exercises the annotation-NFA machinery."""
        sqa = first_one_sqa()
        result = query_witness(sqa)
        assert result is not None
        tree, path = result
        assert path in sqa.evaluate(tree)

    def test_empty_query_detected(self):
        """Selection on a pair that can never be visited.

        In ``ones_selector`` the state ``u`` is assigned only by the leaf
        transition at 1-labeled leaves, so the pair (u, "0") never occurs.
        """
        selector = ones_selector(select=("u", "0"))
        assert query_is_empty(selector)

    def test_nonempty_variant_of_the_same_automaton(self):
        selector = ones_selector(select=("u", "1"))
        result = query_witness(selector)
        assert result is not None
        tree, path = result
        assert path in selector.evaluate(tree)

    def test_ranked_query_via_conversion(self):
        qa = ranked_query_to_unranked(circuit_value_query())
        result = query_witness(qa)
        assert result is not None
        tree, path = result
        assert path in qa.evaluate(tree)

    def test_selection_requires_accepting_run(self):
        """A selecting visit on a rejected tree does not count."""
        from dataclasses import replace

        qa = circuit_query_automaton()
        rejecting = UnrankedQueryAutomaton(
            replace(qa.automaton, accepting=frozenset()), qa.selecting
        )
        assert query_is_empty(rejecting)


class TestWitnessMinimality:
    def test_witnesses_are_small(self):
        """The closure finds witnesses without enumerating big trees."""
        qa = circuit_query_automaton()
        tree, _path = query_witness(qa)
        assert tree.size <= 4
