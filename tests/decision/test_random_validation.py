"""Randomized ground-truth validation of the Section 6 procedures.

Random one-sweep QA^u (guaranteed halting by construction: one descent,
leaf turnaround, classifier-driven ascent) are pitted against brute-force
enumeration over all trees of bounded size: every closure verdict must be
consistent with the enumeration, and every witness must check out.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.decision.closure import (
    BudgetExceededError,
    containment_counterexample,
    language_witness,
    query_witness,
)
from repro.strings.dfa import DFA
from repro.strings.simple_regex import constant_sequence
from repro.trees.generators import enumerate_trees
from repro.unranked.twoway import (
    TwoWayUnrankedAutomaton,
    UnrankedQueryAutomaton,
    UpClassifier,
)

LABELS = ("a", "b")
SMALL_TREES = enumerate_trees(list(LABELS), 4)


def random_sweep_qa(seed: int, up_states: int = 2) -> UnrankedQueryAutomaton:
    """A random always-halting QA^u.

    Descends in ``s``; leaves turn into a label-dependent up state;
    internal nodes classify their children word with a random DFA into a
    random up state.  F and λ are random.
    """
    rng = random.Random(seed)
    ups = [f"u{i}" for i in range(up_states)]
    states = frozenset({"s", *ups})
    pair_alphabet = frozenset((u, label) for u in ups for label in LABELS)

    # Random total classifier DFA with 2 states over the pair alphabet.
    dfa_states = [0, 1]
    transitions = {
        (q, letter): rng.choice(dfa_states)
        for q in dfa_states
        for letter in pair_alphabet
    }
    dfa = DFA.build(dfa_states, pair_alphabet, transitions, 0, set())
    outcome = {}
    for q in dfa_states:
        if rng.random() < 0.9:
            outcome[q] = ("up", rng.choice(ups))
    classifier = UpClassifier(dfa, outcome)

    delta_leaf = {("s", label): rng.choice(ups) for label in LABELS}
    automaton = TwoWayUnrankedAutomaton(
        states=states,
        alphabet=frozenset(LABELS),
        initial="s",
        accepting=frozenset(q for q in states if rng.random() < 0.6),
        up_pairs=pair_alphabet,
        down_pairs=frozenset(("s", label) for label in LABELS),
        delta_leaf=delta_leaf,
        delta_root={},
        up_classifier=classifier,
        down={("s", label): constant_sequence("s") for label in LABELS},
    )
    selecting = frozenset(
        pair for pair in pair_alphabet if rng.random() < 0.3
    )
    return UnrankedQueryAutomaton(automaton, selecting)


def brute_force_query_nonempty(qa: UnrankedQueryAutomaton):
    for tree in SMALL_TREES:
        selected = qa.evaluate(tree)
        if selected:
            return tree, sorted(selected)[0]
    return None


class TestQueryNonEmptinessAgainstBruteForce:
    @pytest.mark.parametrize("seed", range(20))
    def test_verdicts_consistent(self, seed):
        qa = random_sweep_qa(seed)
        verdict = query_witness(qa)
        brute = brute_force_query_nonempty(qa)
        if verdict is None:
            # The closure is complete: no small tree may select anything.
            assert brute is None, f"closure missed witness {brute!r}"
        else:
            tree, path = verdict
            assert path in qa.evaluate(tree), "closure witness is wrong"

    @pytest.mark.parametrize("seed", range(20, 30))
    def test_behavior_evaluation_agrees_on_random_automata(self, seed):
        from repro.unranked.behavior import evaluate_query_via_behavior

        qa = random_sweep_qa(seed)
        for tree in SMALL_TREES[:50]:
            assert evaluate_query_via_behavior(qa, tree) == qa.evaluate(tree)


class TestPackedAgainstNaive:
    """Differential suite: the bitset-packed worklist engine against the
    retained naive closure, witness for witness, across 200 seeded cases.

    Verdicts (empty / non-empty, contained / not) must agree exactly;
    each engine's witness must additionally validate against direct
    evaluation, and claimed containments against brute-force enumeration.
    """

    @pytest.mark.parametrize("seed", range(140))
    def test_nonemptiness_agrees(self, seed):
        qa = random_sweep_qa(seed + 1000, up_states=2 + seed % 2)
        naive = query_witness(qa, engine="naive")
        packed = query_witness(qa, engine="packed")
        assert (naive is None) == (packed is None), f"verdicts split on {seed}"
        for verdict in (naive, packed):
            if verdict is not None:
                tree, path = verdict
                assert path in qa.evaluate(tree), "witness does not check out"
        naive_lang = language_witness(qa.automaton, engine="naive")
        packed_lang = language_witness(qa.automaton, engine="packed")
        assert (naive_lang is None) == (packed_lang is None)
        for tree in (naive_lang, packed_lang):
            if tree is not None:
                assert qa.automaton.accepts(tree)

    @pytest.mark.parametrize("seed", range(60))
    def test_containment_agrees(self, seed):
        first = random_sweep_qa(seed * 2 + 2000)
        second = random_sweep_qa(seed * 2 + 2001)
        naive = containment_counterexample(first, second, engine="naive")
        packed = containment_counterexample(first, second, engine="packed")
        assert (naive is None) == (packed is None), f"verdicts split on {seed}"
        for result in (naive, packed):
            if result is not None:
                tree, path = result
                assert path in first.evaluate(tree)
                assert path not in second.evaluate(tree)
        if naive is None:
            for tree in SMALL_TREES:
                assert first.evaluate(tree) <= second.evaluate(tree), str(tree)


class TestBudgetExceeded:
    """The budget error carries diagnostic counters on both engines."""

    def test_packed_budget_fields(self):
        qa = random_sweep_qa(3)
        with pytest.raises(BudgetExceededError) as excinfo:
            query_witness(qa, budget=1, engine="packed")
        error = excinfo.value
        assert error.budget == 1
        assert error.work is not None and error.work > 1
        assert error.closure_size is not None and error.closure_size >= 0
        assert error.pending_scans is not None and error.pending_scans >= 0
        assert "budget 1" in str(error)
        assert "pending scans" in str(error)

    def test_naive_budget_fields(self):
        qa = random_sweep_qa(3)
        with pytest.raises(BudgetExceededError) as excinfo:
            query_witness(qa, budget=1, engine="naive")
        error = excinfo.value
        assert error.budget == 1
        assert error.work is not None and error.work > 1
        assert error.closure_size is not None and error.closure_size >= 0

    def test_budget_allows_completion_when_generous(self):
        qa = random_sweep_qa(3)
        generous = query_witness(qa, budget=10_000_000, engine="packed")
        default = query_witness(qa, engine="packed")
        assert (generous is None) == (default is None)


class TestContainmentAgainstBruteForce:
    @pytest.mark.parametrize("seed", range(12))
    def test_counterexamples_and_containments(self, seed):
        first = random_sweep_qa(seed * 2 + 100)
        second = random_sweep_qa(seed * 2 + 101)
        result = containment_counterexample(first, second)
        if result is None:
            # Claimed containment: check it on every small tree.
            for tree in SMALL_TREES:
                assert first.evaluate(tree) <= second.evaluate(tree), str(tree)
        else:
            tree, path = result
            assert path in first.evaluate(tree)
            assert path not in second.evaluate(tree)
