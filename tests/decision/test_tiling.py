"""Proposition 6.1: TWO PERSON CORRIDOR TILING → 2DTA^r non-emptiness."""

import pytest

from repro.decision.closure import language_witness
from repro.decision.convert import ranked_to_unranked
from repro.decision.tiling import (
    TilingInstance,
    is_strategy_tree,
    strategy_tree,
    tiling_acceptor,
)

FULL = frozenset(
    [(a, b) for a in ("a", "b") for b in ("a", "b")]
)


def trivial_win() -> TilingInstance:
    """Width 1; the bottom row already supports the top."""
    return TilingInstance(
        tiles=("a", "b"),
        horizontal=FULL,
        vertical=frozenset([("a", "a")]),
        bottom=("a",),
        top=("a",),
    )


def forced_loss() -> TilingInstance:
    """No vertical continuation at all: player 1 cannot ever finish."""
    return TilingInstance(
        tiles=("a", "b"),
        horizontal=frozenset([("a", "a")]),
        vertical=frozenset(),
        bottom=("a",),
        top=("b",),
    )


def one_step_win() -> TilingInstance:
    """Width 1 with a forced middle row: a → b → a (no direct a → a)."""
    return TilingInstance(
        tiles=("a", "b"),
        horizontal=FULL,
        vertical=frozenset([("a", "b"), ("b", "a")]),
        bottom=("a",),
        top=("a",),
    )


def width_two_game() -> TilingInstance:
    """Width 2 with player 2 interference on even columns."""
    return TilingInstance(
        tiles=("a", "b"),
        horizontal=FULL,
        vertical=frozenset([("a", "a"), ("b", "b"), ("a", "b")]),
        bottom=("a", "a"),
        top=("b", "b"),
    )


class TestGameSolver:
    def test_trivial_win(self):
        assert trivial_win().player_one_wins()

    def test_forced_loss(self):
        assert not forced_loss().player_one_wins()

    def test_one_step_win(self):
        assert one_step_win().player_one_wins()

    def test_width_two(self):
        # Vertical allows staying or moving a→b; player 2 can also play
        # legally, but every legal play still reaches (b, b): player 1 wins.
        assert width_two_game().player_one_wins()


class TestStrategyTrees:
    @pytest.mark.parametrize(
        "instance_factory",
        [trivial_win, one_step_win, width_two_game],
        ids=["trivial", "one-step", "width-two"],
    )
    def test_winning_strategy_tree_is_valid(self, instance_factory):
        instance = instance_factory()
        tree = strategy_tree(instance)
        assert tree is not None
        assert is_strategy_tree(instance, tree)

    def test_losing_instance_has_no_tree(self):
        assert strategy_tree(forced_loss()) is None

    def test_corrupted_tree_rejected(self):
        instance = one_step_win()
        tree = strategy_tree(instance)
        # Replace player 1's move by an illegal tile: a → a has no V-edge.
        corrupted = tree.relabel(
            lambda _p, label: label.replace("1:1:b", "1:1:a")
        )
        assert corrupted != tree
        assert not is_strategy_tree(instance, corrupted)


class TestReduction:
    """instance ↦ 2DTA^r with (non-empty ⟺ player 1 wins)."""

    @pytest.mark.parametrize(
        "instance_factory,expected",
        [
            (trivial_win, True),
            (one_step_win, True),
            (forced_loss, False),
        ],
        ids=["trivial-win", "one-step-win", "forced-loss"],
    )
    def test_emptiness_decides_the_game(self, instance_factory, expected):
        instance = instance_factory()
        acceptor = tiling_acceptor(instance)
        witness = language_witness(ranked_to_unranked(acceptor))
        assert (witness is not None) == expected
        assert instance.player_one_wins() == expected
        if witness is not None:
            assert acceptor.accepts(witness)

    def test_acceptor_accepts_the_strategy_tree(self):
        instance = one_step_win()
        tree = strategy_tree(instance)
        acceptor = tiling_acceptor(instance)
        assert acceptor.accepts(tree)

    def test_acceptor_rejects_corrupted_trees(self):
        instance = one_step_win()
        tree = strategy_tree(instance)
        acceptor = tiling_acceptor(instance)
        corrupted = tree.relabel(
            lambda _p, label: label.replace("1:1:b", "1:1:a")
        )
        assert not acceptor.accepts(corrupted)
