"""Ranked → unranked embedding (the Section 6 uniformization)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.decision.convert import ranked_query_to_unranked, ranked_to_unranked
from repro.ranked.examples import circuit_acceptor, circuit_value_query
from repro.trees.generators import random_binary_circuit


class TestConversion:
    @given(st.integers(min_value=0, max_value=4), st.integers(min_value=0, max_value=100))
    @settings(max_examples=50, deadline=None)
    def test_language_preserved(self, height, seed):
        ranked = circuit_acceptor()
        unranked = ranked_to_unranked(ranked)
        tree = random_binary_circuit(height, seed)
        assert unranked.accepts(tree) == ranked.accepts(tree)

    @given(st.integers(min_value=0, max_value=4), st.integers(min_value=0, max_value=100))
    @settings(max_examples=50, deadline=None)
    def test_query_preserved(self, height, seed):
        ranked = circuit_value_query()
        unranked = ranked_query_to_unranked(ranked)
        tree = random_binary_circuit(height, seed)
        assert unranked.evaluate(tree) == ranked.evaluate(tree)

    def test_runs_have_matching_shape(self):
        """Same number of configurations on the same input."""
        from repro.trees.tree import Tree

        ranked = circuit_acceptor()
        unranked = ranked_to_unranked(ranked)
        tree = Tree.parse("AND(1, 0)")
        assert len(ranked.run(tree)) == len(unranked.run(tree))

    def test_down_languages_are_slender(self):
        unranked = ranked_to_unranked(circuit_acceptor())
        for (state, label), regex in unranked.down.items():
            # At most one string per realized length, by construction.
            for length in regex.realized_lengths(4):
                assert regex.string_of_length(length) is not None
