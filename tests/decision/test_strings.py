"""Section 6 on strings: QA^string non-emptiness/containment/equivalence."""

import itertools

import pytest

from repro.decision.strings import (
    selection_language,
    string_containment_counterexample,
    string_queries_equivalent,
    string_query_witness,
)
from repro.strings.examples import (
    endpoints_if_contains,
    odd_ones_query_automaton,
    sweep_right_dfa_as_qa,
)


class TestSelectionLanguage:
    def test_exact_on_exhaustive_words(self):
        qa = odd_ones_query_automaton()
        language = selection_language(qa, ["0", "1"])
        for n in range(7):
            for letters in itertools.product("01", repeat=n):
                word = list(letters)
                selected = qa.evaluate(word)
                for i in range(1, n + 1):
                    marked = [
                        (symbol, 1 if j + 1 == i else 0)
                        for j, symbol in enumerate(word)
                    ]
                    assert language.accepts(marked) == (i in selected), (word, i)

    def test_exact_for_two_way_endpoint_query(self):
        qa = endpoints_if_contains("01", "1")
        language = selection_language(qa, ["0", "1"])
        for n in range(6):
            for letters in itertools.product("01", repeat=n):
                word = list(letters)
                selected = qa.evaluate(word)
                for i in range(1, n + 1):
                    marked = [
                        (symbol, 1 if j + 1 == i else 0)
                        for j, symbol in enumerate(word)
                    ]
                    assert language.accepts(marked) == (i in selected), (word, i)

    def test_language_rejects_unmarked_and_double_marked(self):
        qa = odd_ones_query_automaton()
        language = selection_language(qa, ["0", "1"])
        assert not language.accepts([("1", 0), ("1", 0)])
        assert not language.accepts([("1", 1), ("1", 1)])


class TestStringDecisions:
    def test_nonemptiness_witness(self):
        qa = odd_ones_query_automaton()
        result = string_query_witness(qa, ["0", "1"])
        assert result is not None
        word, position = result
        assert position in qa.evaluate(word)

    def test_empty_query(self):
        """A QA^string with empty λ selects nothing, everywhere."""
        qa = odd_ones_query_automaton()
        from repro.strings.twoway import StringQueryAutomaton

        never = StringQueryAutomaton(qa.automaton, frozenset())
        assert string_query_witness(never, ["0", "1"]) is None

    def test_containment_both_ways(self):
        endpoints = endpoints_if_contains("01", "1")
        all_ones = sweep_right_dfa_as_qa("01", ["1"])
        cx = string_containment_counterexample(endpoints, all_ones, ["0", "1"])
        assert cx is not None
        word, position = cx
        assert position in endpoints.evaluate(word)
        assert position not in all_ones.evaluate(word)
        cx2 = string_containment_counterexample(all_ones, endpoints, ["0", "1"])
        assert cx2 is not None  # e.g. a middle 1 is not an endpoint

    def test_equivalence(self):
        qa = odd_ones_query_automaton()
        assert string_queries_equivalent(qa, qa, ["0", "1"])
        assert not string_queries_equivalent(
            qa, sweep_right_dfa_as_qa("01", ["1"]), ["0", "1"]
        )

    def test_equivalence_of_distinct_machines_same_query(self):
        """A one-way and a two-way machine computing the same query."""
        one_way = sweep_right_dfa_as_qa("01", ["1"])  # select all 1s
        # Two-way variant: Example 3.4's walker but selecting 1s in both
        # sweep states (s1 and s2), i.e. every 1 — the same query.
        from repro.strings.twoway import StringQueryAutomaton

        base = odd_ones_query_automaton()
        both_sweeps = StringQueryAutomaton(
            base.automaton, frozenset({("s1", "1"), ("s2", "1")})
        )
        assert string_queries_equivalent(one_way, both_sweeps, ["0", "1"])
