"""Theorem 6.4: containment and equivalence of query automata."""

import pytest

from repro.decision.closure import (
    are_equivalent,
    containment_counterexample,
    is_contained,
)
from repro.trees.generators import enumerate_trees
from repro.unranked.examples import circuit_query_automaton, first_one_sqa
from repro.unranked.twoway import UnrankedQueryAutomaton


def gates_only_variant() -> UnrankedQueryAutomaton:
    full = circuit_query_automaton()
    return UnrankedQueryAutomaton(
        full.automaton, frozenset(p for p in full.selecting if p[0] != "u")
    )


class TestContainment:
    def test_restriction_is_contained(self):
        assert is_contained(gates_only_variant(), circuit_query_automaton())

    def test_strict_containment_has_counterexample(self):
        full = circuit_query_automaton()
        gates = gates_only_variant()
        result = containment_counterexample(full, gates)
        assert result is not None
        tree, path = result
        assert path in full.evaluate(tree)
        assert path not in gates.evaluate(tree)

    def test_counterexample_agrees_with_brute_force(self):
        """Ground truth: enumerate small circuit trees directly."""
        full = circuit_query_automaton()
        gates = gates_only_variant()
        brute = None
        for tree in enumerate_trees(["0", "1", "AND", "OR"], 3, max_arity=3):
            extra = full.evaluate(tree) - gates.evaluate(tree)
            if extra:
                brute = (tree, sorted(extra)[0])
                break
        assert brute is not None  # brute force agrees a counterexample exists
        assert containment_counterexample(full, gates) is not None


class TestEquivalence:
    def test_reflexive(self):
        qa = circuit_query_automaton()
        assert are_equivalent(qa, qa)

    def test_sqa_reflexive(self):
        sqa = first_one_sqa()
        assert are_equivalent(sqa, sqa)

    def test_different_queries_not_equivalent(self):
        assert not are_equivalent(circuit_query_automaton(), gates_only_variant())

    def test_syntactically_different_equivalent_automata(self):
        """Adding a never-firing selection pair keeps the query equal."""
        from .test_closure import ones_selector

        qa = ones_selector(select=("u", "1"))
        padded = UnrankedQueryAutomaton(
            qa.automaton,
            qa.selecting | {("u", "0"), ("z", "1")},  # unreachable pairs
        )
        assert are_equivalent(qa, padded)


class TestAlphabetDiscipline:
    def test_mismatched_alphabets_rejected(self):
        with pytest.raises(ValueError):
            is_contained(circuit_query_automaton(), first_one_sqa())
