"""Differential suite: numpy-antichain string decisions ≡ frozenset oracle.

The Section 6 string procedures search lazily determinized selection
languages; ``engine="numpy"`` replaces the frozenset antichains with
packbits mask matrices.  Witness words, counterexample positions,
equivalence verdicts and the ``antichain.*`` counters must all match the
default engine exactly.

Random machines are one-way sweeps through random total DFAs (the
Hopcroft–Ullman two-way machines make the determinized search space
explode — fine for one decision, too slow for hundreds); the fixed
two-way examples cover the behavior-composed branch.
"""

import random

import pytest

from repro import obs
from repro.decision.strings import (
    string_containment_counterexample,
    string_queries_equivalent,
    string_query_witness,
)
from repro.perf import npkernel
from repro.strings.examples import (
    endpoints_if_contains,
    multi_sweep_query_automaton,
    odd_ones_query_automaton,
    sweep_right_dfa_as_qa,
)
from repro.strings.twoway import LEFT_MARKER, StringQueryAutomaton, TwoWayDFA

from ..conftest import random_total_dfa

needs_numpy = pytest.mark.skipif(
    not npkernel.available(), reason="numpy not installed"
)

ALPHABET = ("a", "b")


def _random_qa(rng, rate=0.3):
    """A one-way QA sweeping right through a random total DFA."""
    dfa = random_total_dfa(rng, ALPHABET)
    right = {(state, LEFT_MARKER): dfa.initial for state in dfa.states}
    for (state, symbol), target in dfa.transitions.items():
        right[(state, symbol)] = target
    automaton = TwoWayDFA.build(
        dfa.states, ALPHABET, dfa.initial, dfa.accepting, {}, right
    )
    selecting = frozenset(
        (state, symbol)
        for state in sorted(dfa.states, key=repr)
        for symbol in ALPHABET
        if rng.random() < rate
    )
    return StringQueryAutomaton(automaton, selecting)


@needs_numpy
class TestWitnessDifferential:
    def test_random_queries_agree(self):
        """≥200 random QAs: identical witness words and positions (the
        BFS explores in the same order, so ties break identically)."""
        rng = random.Random(0xF1)
        nonempty = 0
        for case in range(220):
            qa = _random_qa(rng)
            expected = string_query_witness(qa, ALPHABET)
            observed = string_query_witness(qa, ALPHABET, engine="numpy")
            assert observed == expected, case
            if expected is not None:
                nonempty += 1
                word, position = expected
                assert position in qa.evaluate(word)
        assert 5 <= nonempty <= 215

    def test_two_way_examples_agree(self):
        for qa in [
            odd_ones_query_automaton(),
            multi_sweep_query_automaton(3),
        ]:
            expected = string_query_witness(qa, ["0", "1"])
            assert (
                string_query_witness(qa, ["0", "1"], engine="numpy")
                == expected
            )
        qa = endpoints_if_contains("01", "1")
        assert string_query_witness(
            qa, ["0", "1"], engine="numpy"
        ) == string_query_witness(qa, ["0", "1"])

    def test_counters_match(self):
        qa = endpoints_if_contains("01", "1")

        def counters(engine):
            with obs.collecting() as stats:
                string_query_witness(qa, ["0", "1"], engine=engine)
            return {
                key: value
                for key, value in stats.report()["counters"].items()
                if key.startswith("antichain.")
            }

        expected = counters(None)
        assert counters("numpy") == expected
        assert expected["antichain.searches"] == 1


@needs_numpy
class TestContainmentDifferential:
    def test_random_pairs_agree(self):
        rng = random.Random(0xF2)
        found = 0
        for case in range(80):
            first, second = _random_qa(rng), _random_qa(rng)
            expected = string_containment_counterexample(
                first, second, ALPHABET
            )
            observed = string_containment_counterexample(
                first, second, ALPHABET, engine="numpy"
            )
            assert observed == expected, case
            if expected is not None:
                found += 1
                word, position = expected
                assert position in first.evaluate(word)
                assert position not in second.evaluate(word)
        assert found >= 5

    def test_equivalence_verdicts_agree(self):
        rng = random.Random(0xF3)
        for case in range(40):
            first, second = _random_qa(rng), _random_qa(rng)
            assert string_queries_equivalent(
                first, second, ALPHABET, engine="numpy"
            ) == string_queries_equivalent(first, second, ALPHABET), case
        qa = odd_ones_query_automaton()
        assert string_queries_equivalent(qa, qa, ["0", "1"], engine="numpy")

    def test_known_containment_pair(self):
        endpoints = endpoints_if_contains("01", "1")
        all_ones = sweep_right_dfa_as_qa("01", ["1"])
        for first, second in [(endpoints, all_ones), (all_ones, endpoints)]:
            assert string_containment_counterexample(
                first, second, ["0", "1"], engine="numpy"
            ) == string_containment_counterexample(first, second, ["0", "1"])


class TestEngineValidation:
    def test_unknown_engine_rejected(self):
        qa = odd_ones_query_automaton()
        with pytest.raises(ValueError, match="unknown"):
            string_query_witness(qa, ["0", "1"], engine="abacus")

    def test_fallback_without_numpy(self, monkeypatch):
        monkeypatch.setattr(npkernel, "np", None)
        qa = odd_ones_query_automaton()
        with obs.collecting() as stats:
            assert string_query_witness(
                qa, ["0", "1"], engine="numpy"
            ) == string_query_witness(qa, ["0", "1"])
        assert stats.report()["counters"]["npkernel.fallbacks"] >= 1
