"""The annotation NFA: one-way recognition of a GSQA's transduction graph."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.decision.annotation import AnnotationNFA
from repro.strings.examples import odd_ones_gsqa
from repro.unranked.examples import first_one_sqa


class TestExactness:
    def test_accepts_true_streams(self):
        gsqa = odd_ones_gsqa()
        annotation = AnnotationNFA(gsqa)
        for n in range(6):
            for word in itertools.product("01", repeat=n):
                outputs = gsqa.transduce(list(word))
                assert annotation.accepts_stream(list(zip(word, outputs))), word

    def test_rejects_any_single_corruption(self):
        gsqa = odd_ones_gsqa()
        annotation = AnnotationNFA(gsqa)
        for n in range(1, 5):
            for word in itertools.product("01", repeat=n):
                outputs = list(gsqa.transduce(list(word)))
                for position in range(n):
                    for wrong in "01*":
                        if wrong == outputs[position]:
                            continue
                        corrupted = list(outputs)
                        corrupted[position] = wrong
                        assert not annotation.accepts_stream(
                            list(zip(word, corrupted))
                        ), (word, corrupted)

    @given(st.lists(st.sampled_from("01"), min_size=0, max_size=9))
    @settings(max_examples=50, deadline=None)
    def test_graph_membership_property(self, word):
        gsqa = odd_ones_gsqa()
        annotation = AnnotationNFA(gsqa)
        outputs = gsqa.transduce(word)
        assert annotation.accepts_stream(list(zip(word, outputs)))


class TestStayGSQA:
    def test_first_one_stay_transducer(self):
        """The Example 5.14 stay GSQA's graph is recognized exactly."""
        sqa = first_one_sqa()
        gsqa = sqa.automaton.stay_gsqa
        annotation = AnnotationNFA(gsqa)
        letters = [("stay", "0"), ("stay", "1")]
        for n in range(1, 5):
            for word in itertools.product(letters, repeat=n):
                outputs = gsqa.transduce(list(word))
                assert annotation.accepts_stream(list(zip(word, outputs)))
                # Crown a non-first position instead: must reject.
                if outputs.count("one") == 1 and n >= 2:
                    index = outputs.index("one")
                    other = (index + 1) % n
                    corrupted = list(outputs)
                    corrupted[index], corrupted[other] = "up", "one"
                    assert not annotation.accepts_stream(
                        list(zip(word, corrupted))
                    ), (word, corrupted)
