"""Cross-module property tests: algebraic invariants of the substrates."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.strings.dfa import DFA
from repro.strings.regex import Atom, Star, concat_all, literal, to_dfa, union_all
from repro.strings.simple_regex import Branch, SimpleRegex
from repro.trees.tree import Tree

from .conftest import all_words, total_dfas, trees, words


class TestMinimalDFACanonicity:
    """The minimal DFA is unique: equivalent automata minimize to the
    same number of states (Myhill–Nerode)."""

    @given(total_dfas(max_states=4))
    @settings(max_examples=30, deadline=None)
    def test_minimized_fixed_point(self, dfa):
        once = dfa.minimized()
        twice = once.minimized()
        assert len(once.states) == len(twice.states)
        assert once.equivalent(dfa)

    @given(total_dfas(max_states=3), total_dfas(max_states=3))
    @settings(max_examples=30, deadline=None)
    def test_equivalent_automata_share_minimal_size(self, left, right):
        if left.equivalent(right):
            assert len(left.minimized().states) == len(right.minimized().states)


class TestSimpleRegexVsFullRegex:
    """A slender ``x y* z`` union denotes the same language through the
    general regex machinery."""

    @given(
        st.lists(st.sampled_from("ab"), max_size=2),
        st.lists(st.sampled_from("ab"), min_size=1, max_size=2),
        st.lists(st.sampled_from("ab"), max_size=2),
        words(max_length=6),
    )
    @settings(max_examples=60, deadline=None)
    def test_membership_agrees(self, prefix, pump, suffix, word):
        simple = SimpleRegex([Branch(tuple(prefix), tuple(pump), tuple(suffix))])
        full = to_dfa(
            concat_all(literal(prefix), Star(literal(pump)), literal(suffix)),
            frozenset("ab"),
        )
        assert (list(word) in simple) == full.accepts(word)


class TestTreeIdentities:
    @given(trees(max_size=9))
    @settings(max_examples=40, deadline=None)
    def test_envelope_plus_children_subtrees(self, tree):
        """|t̄_v| + Σ|t_{vi}| = |t| + 1 when v has children (v is shared)."""
        for path in tree.nodes():
            node = tree.subtree(path)
            if not node.children:
                continue
            envelope = tree.envelope(path)
            children_total = sum(child.size for child in node.children)
            assert envelope.size + children_total == tree.size

    @given(trees(max_size=9))
    @settings(max_examples=40, deadline=None)
    def test_height_and_depth_bounds(self, tree):
        for path in tree.nodes():
            assert Tree.depth(path) + tree.subtree(path).height <= (
                tree.height
            )

    @given(trees(max_size=8))
    @settings(max_examples=40, deadline=None)
    def test_mark_changes_exactly_one_label(self, tree):
        for target in tree.nodes():
            marked = tree.mark(target)
            changed = [
                path
                for path, label in marked.nodes_with_labels()
                if label != tree.label_at(path)
            ]
            assert changed == [target]


class TestXMLRoundTrip:
    @given(trees(labels=("alpha", "beta", "gamma"), max_size=9))
    @settings(max_examples=40, deadline=None)
    def test_serialize_parse_roundtrip(self, tree):
        """Random element trees survive serialize → parse → abstract."""
        from repro.trees.xml import XMLElement, parse_document, serialize, to_structure_tree

        def to_element(node: Tree) -> XMLElement:
            return XMLElement(
                node.label, {}, [to_element(child) for child in node.children]
            )

        text = serialize(to_element(tree))
        assert to_structure_tree(parse_document(text)) == tree


class TestQueryEnginesAgree:
    """Three independent engines on the same query never disagree."""

    @given(trees(max_size=7, max_arity=3))
    @settings(max_examples=30, deadline=None)
    def test_three_engines(self, tree):
        from repro.logic.compile_trees import compile_tree_query, mark
        from repro.logic.semantics import tree_query
        from repro.logic.syntax import And, Exists, Label, Less, Not, Var
        from repro.unranked.dbta import evaluate_marked_query
        from repro.unranked.mso_to_sqa import figure6_evaluate

        x, y = Var("x"), Var("y")
        phi = And(Label(x, "a"), Not(Exists(y, And(Less(y, x), Label(y, "a")))))
        automaton = _cached_query()
        reference = tree_query(tree, phi, x)
        assert evaluate_marked_query(automaton, tree, mark) == reference
        assert figure6_evaluate(automaton, tree) == reference


_QUERY_CACHE = []


def _cached_query():
    if not _QUERY_CACHE:
        from repro.logic.compile_trees import compile_tree_query
        from repro.logic.syntax import And, Exists, Label, Less, Not, Var

        x, y = Var("x"), Var("y")
        phi = And(Label(x, "a"), Not(Exists(y, And(Less(y, x), Label(y, "a")))))
        _QUERY_CACHE.append(compile_tree_query(phi, x, ["a", "b"]))
    return _QUERY_CACHE[0]
