"""Shared generators for the serve suites: random documents and edits.

Documents are random small XML trees over a fixed five-symbol alphabet.
The first five root children are a *forced block* — one element per
label plus one text chunk — and edits never touch it, so the document
alphabet stays constant across any edit sequence: every query in
:data:`QUERIES` compiles once per suite instead of once per revision,
and no edit can make a query's labels vanish from the alphabet.
"""

from __future__ import annotations

import random

from repro.core.pipeline import Document
from repro.trees.xml import XMLElement

LABELS = ("a", "b", "c", "d")

#: Query strings spanning all three syntaxes over the fixed alphabet.
QUERIES = (
    "//a",
    "//b",
    "//c/d",
    "xpath://a[b]",
    "xpath://b[not(c)]",
    "xpath://a/following-sibling::b",
    "mso:lab_a(x)",
    "mso:leaf(x) & !lab_d(x)",
)

#: The forced block: root children 0–4, never edited.
_FORCED = 5


def random_element(rng: random.Random, depth: int = 0) -> XMLElement:
    """One random element; bounded depth and arity."""
    content: list[XMLElement | str] = []
    if depth < 3:
        for _ in range(rng.randrange(0, 4)):
            if rng.random() < 0.25:
                content.append(f"t{rng.randrange(10)}")
            else:
                content.append(random_element(rng, depth + 1))
    return XMLElement(rng.choice(LABELS), {}, content)


def random_document(rng: random.Random, body: int | None = None) -> Document:
    """A random document whose alphabet is exactly LABELS + ``#text``."""
    forced: list[XMLElement | str] = [
        XMLElement(label, {}, []) for label in LABELS
    ]
    forced.append("forced text")
    count = body if body is not None else rng.randrange(2, 6)
    children = forced + [random_element(rng, 1) for _ in range(count)]
    return Document.from_element(XMLElement("a", {}, children))


def editable_paths(document: Document) -> list[tuple[int, ...]]:
    """Element paths an edit may target (outside the forced block)."""
    found: list[tuple[int, ...]] = []
    stack: list[tuple[tuple[int, ...], XMLElement]] = [((), document.element)]
    while stack:
        path, element = stack.pop()
        for i, item in enumerate(element.content):
            if not path and i < _FORCED:
                continue
            child = path + (i,)
            if isinstance(item, XMLElement):
                found.append(child)
                stack.append((child, item))
    return sorted(found)


def random_edit(
    rng: random.Random, document: Document
) -> tuple[str, tuple[int, ...], Document]:
    """One random replace/delete; returns (kind, path, new document)."""
    paths = editable_paths(document)
    if not paths:
        path = (len(document.element.content),)
        # Nothing editable left: grow a fresh body child instead.
        grown = list(document.element.content) + [random_element(rng, 1)]
        return (
            "replace",
            path,
            Document.from_element(
                XMLElement(
                    document.element.tag, document.element.attributes, grown
                )
            ),
        )
    path = rng.choice(paths)
    if rng.random() < 0.3:
        return "delete", path, document.with_deleted(path)
    fragment = random_element(rng, 1)
    return "replace", path, document.with_replaced(path, fragment)
