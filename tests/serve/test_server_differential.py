"""Seeded differential suite: server responses ≡ ``Document.select``.

For random documents and queries across all three engines, the paths a
:class:`QueryServer` returns — stored-document (incremental) path,
inline-document path, and concurrent batched path — must be
byte-identical (as JSON payloads) to the one-shot serial
``Document.select`` on an equivalent fresh parse.
"""

from __future__ import annotations

import asyncio
import json
import random

import pytest

from repro.core.pipeline import Document
from repro.serve import DocumentStore, QueryServer
from repro.serve.protocol import paths_payload
from repro.trees.xml import make_bibliography, serialize

from .util import QUERIES, random_document

ENGINES = ("naive", None, "numpy")

BIB_QUERIES = (
    "//author",
    "xpath://book[author and year]/title",
    "mso:lab_author(x)",
)


def _payload(document: Document, query: str, engine: str | None) -> str:
    """The JSON the server should produce for this select."""
    return json.dumps(paths_payload(document.select(query, engine=engine)))


@pytest.mark.parametrize("engine", ENGINES)
def test_stored_documents_match_oracle(engine):
    async def main():
        server = QueryServer(DocumentStore())
        texts = {
            "bib3": make_bibliography(3, 2),
            "bib5": make_bibliography(5, 5),
        }
        for name, text in texts.items():
            response = await server.handle_frame(
                {"op": "load", "doc": name, "text": text}
            )
            assert response["ok"], response
        for name, text in texts.items():
            oracle = Document.from_text(text)
            for query in BIB_QUERIES:
                frame = {"op": "query", "doc": name, "query": query}
                if engine is not None:
                    frame["engine"] = engine
                response = await server.handle_frame(frame)
                assert response["ok"], response
                assert json.dumps(response["result"]["paths"]) == _payload(
                    oracle, query, engine
                )

    asyncio.run(main())


@pytest.mark.parametrize("engine", ENGINES)
def test_random_documents_and_edits_match_oracle(engine):
    async def main():
        server = QueryServer(DocumentStore())
        rng = random.Random(20260807)
        for seed in range(8):
            doc_rng = random.Random(seed)
            document = random_document(doc_rng)
            name = f"doc{seed}"
            response = await server.handle_frame(
                {"op": "load", "doc": name, "text": serialize(document.element)}
            )
            assert response["ok"], response
            for _ in range(3):
                for query in rng.sample(QUERIES, 3):
                    frame = {
                        "op": "query",
                        "doc": name,
                        "query": query,
                        "verify": True,
                    }
                    if engine is not None:
                        frame["engine"] = engine
                    response = await server.handle_frame(frame)
                    assert response["ok"], (query, response)
                    # The oracle: a completely fresh parse + one-shot select.
                    stored = server.store.get(name)
                    oracle = Document.from_text(serialize(stored.document.element))
                    assert json.dumps(
                        response["result"]["paths"]
                    ) == _payload(oracle, query, engine), (seed, query)
                # A random subtree edit between query rounds.
                stored = server.store.get(name)
                paths = [
                    (i,)
                    for i in range(5, len(stored.document.element.content))
                ]
                if paths:
                    path = list(rng.choice(paths))
                    if rng.random() < 0.5:
                        response = await server.handle_frame(
                            {"op": "delete", "doc": name, "path": path}
                        )
                    else:
                        response = await server.handle_frame(
                            {
                                "op": "replace",
                                "doc": name,
                                "path": path,
                                "fragment": "<b><a>leaf</a></b>",
                            }
                        )
                    assert response["ok"], response

    asyncio.run(main())


@pytest.mark.parametrize("engine", ENGINES)
def test_inline_documents_match_oracle(engine):
    async def main():
        server = QueryServer()
        for seed in range(5):
            document = random_document(random.Random(100 + seed))
            text = serialize(document.element)
            for query in QUERIES[:4]:
                frame = {"op": "query", "text": text, "query": query}
                if engine is not None:
                    frame["engine"] = engine
                response = await server.handle_frame(frame)
                assert response["ok"], response
                assert json.dumps(response["result"]["paths"]) == _payload(
                    Document.from_text(text), query, engine
                )

    asyncio.run(main())


@pytest.mark.parametrize("engine", ENGINES)
def test_concurrent_batched_queries_match_oracle(engine):
    """Same-query concurrency: the batched path stays byte-identical."""

    async def main():
        server = QueryServer()
        texts = [
            serialize(random_document(random.Random(200 + i)).element)
            for i in range(6)
        ]
        query = "xpath://a[b]"
        frames = [
            {"id": i, "op": "query", "text": text, "query": query}
            for i, text in enumerate(texts)
        ]
        if engine is not None:
            for frame in frames:
                frame["engine"] = engine
        responses = await asyncio.gather(
            *(server.handle_frame(frame) for frame in frames)
        )
        assert any(r["stats"]["batch"] > 1 for r in responses)
        for i, (response, text) in enumerate(zip(responses, texts)):
            assert response["ok"], response
            assert response["id"] == i
            assert json.dumps(response["result"]["paths"]) == _payload(
                Document.from_text(text), query, engine
            )

    asyncio.run(main())
