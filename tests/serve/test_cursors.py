"""Server cursor ops: pagination ≡ one-shot query, budgets, invalidation.

``open_cursor`` / ``next_page`` / ``close_cursor`` page a constant-delay
enumeration stream over stored or inline documents.  The differential
property: concatenating every page equals the ``query`` op's paths on
the same revision — and an edit under an open cursor surfaces a
structured ``cursor-invalid`` error rather than stale (or torn) answers.
"""

from __future__ import annotations

import asyncio
import random

import pytest

from repro.serve import DocumentStore, QueryServer
from repro.trees.xml import make_bibliography, serialize

from .util import QUERIES, random_document

ENGINES = ("naive", None, "numpy")


def run(coro):
    return asyncio.run(coro)


async def rpc(server: QueryServer, frame: dict) -> dict:
    return await server.handle_frame(frame)


async def load(server: QueryServer, name: str, text: str) -> dict:
    response = await rpc(server, {"op": "load", "doc": name, "text": text})
    assert response["ok"], response
    return response


async def drain_cursor(server, cid: str, **overrides) -> list[list[int]]:
    """Page a cursor to exhaustion; returns the concatenated paths."""
    paths: list[list[int]] = []
    while True:
        response = await rpc(
            server, {"op": "next_page", "cursor": cid, **overrides}
        )
        assert response["ok"], response
        result = response["result"]
        assert result["offset"] == len(paths)
        assert result["count"] == len(result["paths"])
        paths.extend(result["paths"])
        if result["done"]:
            return paths


class TestPaginationDifferential:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_pages_equal_query(self, engine):
        async def main():
            server = QueryServer(DocumentStore())
            await load(server, "bib", make_bibliography(6, 5))
            for query in ("//author", "xpath://book[year]/title", "//none"):
                frame = {"op": "query", "doc": "bib", "query": query}
                opener = {
                    "op": "open_cursor",
                    "doc": "bib",
                    "query": query,
                    "page_size": 3,
                }
                if engine is not None:
                    frame["engine"] = opener["engine"] = engine
                expected = (await rpc(server, frame))["result"]["paths"]
                opened = await rpc(server, opener)
                assert opened["ok"], opened
                assert opened["result"]["revision"] == 0
                cid = opened["result"]["cursor"]
                assert await drain_cursor(server, cid) == expected, (
                    query,
                    engine,
                )

        run(main())

    def test_random_documents(self):
        async def main():
            server = QueryServer(DocumentStore())
            for seed in range(4):
                document = random_document(random.Random(seed))
                name = f"doc{seed}"
                await load(server, name, serialize(document.element))
                for query in QUERIES[:4]:
                    expected = (
                        await rpc(
                            server,
                            {"op": "query", "doc": name, "query": query},
                        )
                    )["result"]["paths"]
                    opened = await rpc(
                        server,
                        {
                            "op": "open_cursor",
                            "doc": name,
                            "query": query,
                            "page_size": 2,
                        },
                    )
                    cid = opened["result"]["cursor"]
                    assert await drain_cursor(server, cid) == expected

        run(main())

    def test_inline_text_cursor(self):
        async def main():
            server = QueryServer()
            opened = await rpc(
                server,
                {
                    "op": "open_cursor",
                    "text": "<a><b/><c/><b/></a>",
                    "query": "//b",
                    "page_size": 1,
                },
            )
            assert opened["ok"], opened
            assert "doc" not in opened["result"]
            cid = opened["result"]["cursor"]
            assert await drain_cursor(server, cid) == [[0], [2]]

        run(main())

    def test_page_size_override(self):
        async def main():
            server = QueryServer(DocumentStore())
            await load(server, "bib", make_bibliography(6, 5))
            opened = await rpc(
                server,
                {
                    "op": "open_cursor",
                    "doc": "bib",
                    "query": "//author",
                    "page_size": 2,
                },
            )
            cid = opened["result"]["cursor"]
            page = await rpc(
                server, {"op": "next_page", "cursor": cid, "page_size": 5}
            )
            assert page["result"]["count"] == 5
            page = await rpc(server, {"op": "next_page", "cursor": cid})
            assert page["result"]["count"] == 2  # back to the opener's size

        run(main())


class TestBudgets:
    def test_time_budget_trips_and_buffers(self):
        async def main():
            server = QueryServer(DocumentStore())
            await load(server, "bib", make_bibliography(6, 5))
            expected = (
                await rpc(
                    server, {"op": "query", "doc": "bib", "query": "//author"}
                )
            )["result"]["paths"]
            opened = await rpc(
                server,
                {"op": "open_cursor", "doc": "bib", "query": "//author"},
            )
            cid = opened["result"]["cursor"]
            tripped = await rpc(
                server, {"op": "next_page", "cursor": cid, "budget_ms": 0}
            )
            assert not tripped["ok"]
            error = tripped["error"]
            assert error["kind"] == "budget-exceeded"
            assert error["cursor"] == cid
            assert "buffered" in error and "counters" in error
            # The trip lost nothing: a retry without the budget drains all.
            assert await drain_cursor(server, cid) == expected

        run(main())

    def test_step_budget_gates_open(self):
        async def main():
            server = QueryServer(DocumentStore())
            await load(server, "bib", make_bibliography(6, 5))
            response = await rpc(
                server,
                {
                    "op": "open_cursor",
                    "doc": "bib",
                    "query": "//author",
                    "budget_steps": 3,
                },
            )
            assert not response["ok"]
            assert response["error"]["kind"] == "budget-exceeded"
            assert response["error"]["nodes"] > 3
            stats = await rpc(server, {"op": "stats"})
            assert stats["result"]["cursors"]["open"] == 0

        run(main())

    def test_server_default_budget_ms_applies(self):
        async def main():
            server = QueryServer(DocumentStore(), budget_ms=0)
            await load(server, "bib", make_bibliography(3, 2))
            opened = await rpc(
                server,
                {"op": "open_cursor", "doc": "bib", "query": "//author"},
            )
            cid = opened["result"]["cursor"]
            tripped = await rpc(server, {"op": "next_page", "cursor": cid})
            assert not tripped["ok"]
            assert tripped["error"]["kind"] == "budget-exceeded"
            # A per-call override lifts the server default.
            page = await rpc(
                server,
                {"op": "next_page", "cursor": cid, "budget_ms": 60000},
            )
            assert page["ok"], page

        run(main())


class TestInvalidation:
    def test_edit_invalidates_cursor(self):
        async def main():
            server = QueryServer(DocumentStore())
            await load(server, "bib", make_bibliography(4, 3))
            opened = await rpc(
                server,
                {"op": "open_cursor", "doc": "bib", "query": "//author"},
            )
            cid = opened["result"]["cursor"]
            await rpc(server, {"op": "delete", "doc": "bib", "path": [0]})
            response = await rpc(server, {"op": "next_page", "cursor": cid})
            assert not response["ok"]
            error = response["error"]
            assert error["kind"] == "cursor-invalid"
            assert error["opened_revision"] == 0
            assert error["current_revision"] == 1
            # Invalid cursors are dropped; a second pull is not-found.
            again = await rpc(server, {"op": "next_page", "cursor": cid})
            assert again["error"]["kind"] == "not-found"
            # Re-opening enumerates the new revision.
            reopened = await rpc(
                server,
                {"op": "open_cursor", "doc": "bib", "query": "//author"},
            )
            assert reopened["result"]["revision"] == 1

        run(main())

    def test_unload_invalidates_cursor(self):
        async def main():
            server = QueryServer(DocumentStore())
            await load(server, "bib", make_bibliography(3, 2))
            opened = await rpc(
                server,
                {"op": "open_cursor", "doc": "bib", "query": "//author"},
            )
            cid = opened["result"]["cursor"]
            await rpc(server, {"op": "unload", "doc": "bib"})
            response = await rpc(server, {"op": "next_page", "cursor": cid})
            assert response["error"]["kind"] == "cursor-invalid"
            assert response["error"]["current_revision"] is None

        run(main())


class TestLifecycle:
    def test_close_and_done_removal(self):
        async def main():
            server = QueryServer(DocumentStore())
            await load(server, "bib", make_bibliography(3, 2))
            opened = await rpc(
                server,
                {"op": "open_cursor", "doc": "bib", "query": "//author"},
            )
            cid = opened["result"]["cursor"]
            page = await rpc(server, {"op": "next_page", "cursor": cid})
            assert page["result"]["done"]
            gone = await rpc(server, {"op": "next_page", "cursor": cid})
            assert gone["error"]["kind"] == "not-found"
            # Explicit close reports totals and is then not-found too.
            opened = await rpc(
                server,
                {
                    "op": "open_cursor",
                    "doc": "bib",
                    "query": "//author",
                    "page_size": 1,
                },
            )
            cid = opened["result"]["cursor"]
            await rpc(server, {"op": "next_page", "cursor": cid})
            closed = await rpc(server, {"op": "close_cursor", "cursor": cid})
            assert closed["result"] == {
                "closed": cid,
                "answers": 1,
                "pages": 1,
            }
            gone = await rpc(server, {"op": "close_cursor", "cursor": cid})
            assert gone["error"]["kind"] == "not-found"

        run(main())

    def test_stats_report_per_cursor(self):
        async def main():
            server = QueryServer(DocumentStore())
            await load(server, "bib", make_bibliography(3, 2))
            opened = await rpc(
                server,
                {
                    "op": "open_cursor",
                    "doc": "bib",
                    "query": "//author",
                    "page_size": 1,
                },
            )
            cid = opened["result"]["cursor"]
            await rpc(server, {"op": "next_page", "cursor": cid})
            stats = (await rpc(server, {"op": "stats"}))["result"]
            block = stats["cursors"]
            assert block["open"] == 1
            described = block["cursors"][cid]
            assert described["doc"] == "bib"
            assert described["answers"] == 1
            assert described["pages"] == 1
            assert described["counters"]["serve.cursor_opens"] == 1
            report = stats["report"]["counters"]
            assert report["serve.cursor_opens"] == 1
            assert report["serve.cursor_pages"] == 1

        run(main())

    def test_shutdown_expires_open_cursors(self):
        async def main():
            server = QueryServer(DocumentStore())
            await load(server, "bib", make_bibliography(3, 2))
            for _ in range(3):
                await rpc(
                    server,
                    {"op": "open_cursor", "doc": "bib", "query": "//author"},
                )
            response = await rpc(server, {"op": "shutdown"})
            assert response["result"]["cursors_expired"] == 3
            stats = (await rpc(server, {"op": "stats"}))["result"]
            assert stats["cursors"]["open"] == 0
            assert stats["report"]["counters"]["serve.cursor_expired"] == 3

        run(main())


class TestValidation:
    def test_open_cursor_field_errors(self):
        async def main():
            server = QueryServer(DocumentStore())
            await load(server, "bib", make_bibliography(2, 1))
            cases = [
                ({"op": "open_cursor", "query": "//a"}, "bad-request"),
                (
                    {
                        "op": "open_cursor",
                        "doc": "bib",
                        "text": "<a/>",
                        "query": "//a",
                    },
                    "bad-request",
                ),
                (
                    {"op": "open_cursor", "doc": "nope", "query": "//a"},
                    "not-found",
                ),
                (
                    {
                        "op": "open_cursor",
                        "doc": "bib",
                        "query": "//a",
                        "page_size": 0,
                    },
                    "bad-request",
                ),
                (
                    {
                        "op": "open_cursor",
                        "doc": "bib",
                        "query": "//a",
                        "page_size": True,
                    },
                    "bad-request",
                ),
                (
                    {
                        "op": "open_cursor",
                        "doc": "bib",
                        "query": "//a",
                        "engine": "warp",
                    },
                    "engine",
                ),
                (
                    {
                        "op": "open_cursor",
                        "doc": "bib",
                        "query": "xpath://a[",
                    },
                    "query-syntax",
                ),
            ]
            for frame, kind in cases:
                response = await rpc(server, frame)
                assert not response["ok"], frame
                assert response["error"]["kind"] == kind, (frame, response)
            response = await rpc(server, {"op": "next_page", "cursor": "zz"})
            assert response["error"]["kind"] == "not-found"
            response = await rpc(server, {"op": "next_page"})
            assert response["error"]["kind"] == "bad-request"

        run(main())
