"""Protocol unit tests: framing, structured errors, budgets, ops.

Everything here drives :meth:`QueryServer.handle_frame` /
``handle_line`` directly (no sockets): malformed frames and bad requests
must come back as structured error responses — never exceptions — and
budget trips must carry a counter snapshot.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.serve import DocumentStore, ProtocolError, QueryServer
from repro.serve.protocol import (
    budget_field,
    decode_frame,
    encode_frame,
    error_response,
    ok_response,
    path_field,
    request_id,
)
from repro.trees.xml import make_bibliography


def run(coro):
    return asyncio.run(coro)


def rpc(server: QueryServer, frame: dict) -> dict:
    """One request through the server inside a fresh event loop."""
    return run(server.handle_frame(frame))


@pytest.fixture()
def server() -> QueryServer:
    store = DocumentStore()
    store.load("bib", make_bibliography(3, 3))
    return QueryServer(store)


# -- framing ------------------------------------------------------------


def test_decode_rejects_non_json():
    with pytest.raises(ProtocolError) as info:
        decode_frame(b"{nope")
    assert info.value.kind == "malformed-frame"
    assert "offset" in info.value.payload()


def test_decode_rejects_non_object():
    with pytest.raises(ProtocolError) as info:
        decode_frame(b"[1, 2]")
    assert info.value.kind == "malformed-frame"


def test_decode_rejects_bad_utf8():
    with pytest.raises(ProtocolError) as info:
        decode_frame(b'{"op": "\xff"}')
    assert info.value.kind == "malformed-frame"


def test_encode_frame_is_one_line():
    line = encode_frame(ok_response(7, {"pong": True}))
    assert line.endswith(b"\n") and line.count(b"\n") == 1
    assert json.loads(line) == {"id": 7, "ok": True, "result": {"pong": True}}


def test_handle_line_never_raises(server):
    response = json.loads(run(server.handle_line(b"{malformed\n")))
    assert response == {
        "id": None,
        "ok": False,
        "error": response["error"],
    }
    assert response["error"]["kind"] == "malformed-frame"
    # The server is still usable afterwards.
    assert rpc(server, {"op": "ping"})["ok"]


# -- request validation -------------------------------------------------


def test_missing_op_is_bad_request(server):
    response = rpc(server, {"id": 1})
    assert not response["ok"]
    assert response["error"]["kind"] == "bad-request"
    assert response["id"] == 1


def test_unknown_op_lists_known_ops(server):
    response = rpc(server, {"op": "frobnicate"})
    assert response["error"]["kind"] == "bad-request"
    assert "query" in response["error"]["known"]


def test_structured_id_is_rejected():
    with pytest.raises(ProtocolError):
        request_id({"id": {"nested": 1}})


def test_path_field_validation():
    assert path_field({"path": [0, 2, 1]}) == (0, 2, 1)
    for bad in (None, "0/1", [0, -1], [0, True], [0.5]):
        with pytest.raises(ProtocolError):
            path_field({"path": bad})


def test_budget_field_validation():
    assert budget_field({"b": 0}, "b") == 0
    assert budget_field({}, "b", 9) == 9
    for bad in (-1, "10", True):
        with pytest.raises(ProtocolError):
            budget_field({"b": bad}, "b")


def test_query_needs_exactly_one_document_source(server):
    both = rpc(
        server,
        {"op": "query", "doc": "bib", "text": "<a/>", "query": "//a"},
    )
    neither = rpc(server, {"op": "query", "query": "//a"})
    assert both["error"]["kind"] == "bad-request"
    assert neither["error"]["kind"] == "bad-request"


# -- per-op errors ------------------------------------------------------


def test_unknown_document_is_not_found(server):
    response = rpc(server, {"op": "query", "doc": "nope", "query": "//a"})
    assert response["error"]["kind"] == "not-found"
    assert "bib" in response["error"]["message"]


def test_query_syntax_error_carries_offset(server):
    response = rpc(
        server, {"op": "query", "doc": "bib", "query": "xpath://["}
    )
    error = response["error"]
    assert error["kind"] == "query-syntax"
    assert 0 <= error["offset"] <= len("//[")
    assert error["line"] >= 1 and error["column"] >= 1


def test_unknown_engine_is_structured(server):
    response = rpc(
        server,
        {"op": "query", "doc": "bib", "query": "//author", "engine": "gpu"},
    )
    assert not response["ok"]
    assert response["error"]["kind"] in ("engine", "bad-request")


def test_load_validation_failure(server):
    response = rpc(
        server,
        {
            "op": "load",
            "doc": "bad",
            "text": "<a><b/></a>",
            "dtd": "<!ELEMENT a (c)><!ELEMENT c EMPTY>",
        },
    )
    assert response["error"]["kind"] == "validation"
    assert "bad" not in server.store


def test_load_malformed_xml(server):
    response = rpc(server, {"op": "load", "doc": "bad", "text": "<a><b></a>"})
    assert response["error"]["kind"] == "validation"


def test_edit_errors(server):
    root = rpc(server, {"op": "delete", "doc": "bib", "path": []})
    assert root["error"]["kind"] == "bad-request"
    missing = rpc(server, {"op": "delete", "doc": "bib", "path": [99]})
    assert missing["error"]["kind"] == "not-found"
    bad_fragment = rpc(
        server,
        {"op": "replace", "doc": "bib", "path": [0], "fragment": "<a><b>"},
    )
    assert bad_fragment["error"]["kind"] == "validation"


# -- budgets ------------------------------------------------------------


def test_step_budget_trips_with_counter_snapshot(server):
    nodes = server.store.get("bib").tree.size
    response = rpc(
        server,
        {
            "op": "query",
            "doc": "bib",
            "query": "//author",
            "budget_steps": nodes - 1,
        },
    )
    error = response["error"]
    assert error["kind"] == "budget-exceeded"
    assert error["nodes"] == nodes
    assert error["budget_steps"] == nodes - 1
    assert isinstance(error["counters"], dict)
    assert server.lifetime.counters["serve.budget_steps_trips"] == 1


def test_step_budget_admits_at_the_node_count(server):
    nodes = server.store.get("bib").tree.size
    response = rpc(
        server,
        {
            "op": "query",
            "doc": "bib",
            "query": "//author",
            "budget_steps": nodes,
        },
    )
    assert response["ok"], response


def test_time_budget_zero_always_trips(server):
    response = rpc(
        server,
        {"op": "query", "doc": "bib", "query": "//author", "budget_ms": 0},
    )
    error = response["error"]
    assert error["kind"] == "budget-exceeded"
    assert error["budget_ms"] == 0
    assert isinstance(error["counters"], dict)
    assert error["counters"]  # the work ran before the deadline check
    assert server.lifetime.counters["serve.budget_ms_trips"] == 1


def test_server_default_budgets_apply(server):
    server.budget_steps = 1
    response = rpc(server, {"op": "query", "doc": "bib", "query": "//author"})
    assert response["error"]["kind"] == "budget-exceeded"
    # A per-request budget overrides the server default.
    response = rpc(
        server,
        {
            "op": "query",
            "doc": "bib",
            "query": "//author",
            "budget_steps": 10_000,
        },
    )
    assert response["ok"]


# -- happy paths / stats ------------------------------------------------


def test_query_response_shape(server):
    response = rpc(server, {"id": "q1", "op": "query", "doc": "bib", "query": "//author"})
    assert response["id"] == "q1" and response["ok"]
    result = response["result"]
    assert result["doc"] == "bib" and result["revision"] == 0
    assert result["count"] == len(result["paths"])
    assert all(isinstance(p, list) for p in result["paths"])
    stats = response["stats"]
    assert stats["batch"] == 1
    assert stats["counters"]["serve.selects"] == 1
    assert stats["elapsed_ms"] >= 0


def test_edit_then_query_bumps_revision(server):
    rpc(
        server,
        {
            "op": "replace",
            "doc": "bib",
            "path": [0],
            "fragment": "<book><author>X</author><title>T</title>"
            "<year>1999</year></book>",
        },
    )
    response = rpc(
        server,
        {"op": "query", "doc": "bib", "query": "//author", "verify": True},
    )
    assert response["ok"]
    assert response["result"]["revision"] == 1


def test_replace_with_text_chunk(server):
    response = rpc(
        server,
        {"op": "replace", "doc": "bib", "path": [0, 0, 0], "text": "New"},
    )
    assert response["ok"], response


def test_stats_report_shape(server):
    rpc(server, {"op": "query", "doc": "bib", "query": "//author"})
    response = rpc(server, {"op": "stats"})
    result = response["result"]
    assert result["requests"] >= 1
    latency = result["latency_ms"]
    assert latency["count"] >= 1
    assert latency["p50"] <= latency["p99"] <= latency["max"]
    assert result["report"]["counters"]["serve.selects"] == 1
    assert "caches" in result["report"]
    assert result["documents"][0]["doc"] == "bib"


def test_docs_and_unload(server):
    docs = rpc(server, {"op": "docs"})
    assert [d["doc"] for d in docs["result"]["documents"]] == ["bib"]
    assert rpc(server, {"op": "unload", "doc": "bib"})["ok"]
    assert rpc(server, {"op": "docs"})["result"]["documents"] == []
    assert (
        rpc(server, {"op": "unload", "doc": "bib"})["error"]["kind"]
        == "not-found"
    )


def test_error_response_echoes_id():
    error = ProtocolError("bad-request", "nope", hint="x")
    response = error_response("r9", error)
    assert response["id"] == "r9"
    assert response["error"] == {
        "kind": "bad-request",
        "message": "nope",
        "hint": "x",
    }
