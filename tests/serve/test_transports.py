"""Transport coverage: HTTP sniffing, stdio framing, fallback paths.

The NDJSON suites drive ``handle_frame`` directly; these tests drive
the byte-level front doors — the HTTP sniff on the TCP listener, the
stdin/stdout loop, the shutdown race against an idle connection — and
the degraded paths (``batch_select`` group failure, internal errors,
verify divergence surfacing through the protocol).
"""

from __future__ import annotations

import asyncio
import io
import json

import pytest

from repro.serve import DocumentStore, QueryServer
from repro.serve.protocol import bool_field, encode_frame, string_field
from repro.serve.server import _translate
from repro.serve.store import IncrementalMismatchError
from repro.trees.xml import make_bibliography

from .test_protocol import ProtocolError, rpc, run


async def _http(host: str, port: int, request: bytes) -> tuple[str, bytes]:
    """One raw HTTP exchange; returns (status line, body bytes)."""
    reader, writer = await asyncio.open_connection(host, port)
    writer.write(request)
    await writer.drain()
    raw = await reader.read()
    writer.close()
    await writer.wait_closed()
    head, _, body = raw.partition(b"\r\n\r\n")
    return head.split(b"\r\n")[0].decode(), body


def _server() -> QueryServer:
    store = DocumentStore()
    store.load("bib", make_bibliography(3, 3))
    return QueryServer(store)


def test_http_get_stats():
    async def main():
        server = _server()
        host, port = await server.start_tcp()
        status, body = await _http(
            host, port, b"GET /stats HTTP/1.1\r\nHost: x\r\n\r\n"
        )
        assert status == "HTTP/1.1 200 OK"
        report = json.loads(body)["result"]
        assert report["documents"][0]["doc"] == "bib"
        assert server.lifetime.counters["serve.http_requests"] == 1

    run(main())


def test_http_post_ndjson_body():
    async def main():
        server = _server()
        host, port = await server.start_tcp()
        payload = (
            encode_frame({"id": 1, "op": "ping"})
            + encode_frame(
                {"id": 2, "op": "query", "doc": "bib", "query": "//author"}
            )
            + b"{malformed\n"
        )
        request = (
            b"POST / HTTP/1.1\r\nHost: x\r\n"
            + f"Content-Length: {len(payload)}\r\n\r\n".encode()
            + payload
        )
        status, body = await _http(host, port, request)
        assert status == "HTTP/1.1 200 OK"
        lines = [json.loads(line) for line in body.splitlines()]
        assert [r["id"] for r in lines] == [1, 2, None]
        assert lines[0]["result"]["pong"]
        assert lines[1]["result"]["count"] > 0
        assert lines[2]["error"]["kind"] == "malformed-frame"

    run(main())


def test_http_unknown_route_is_404():
    async def main():
        server = _server()
        host, port = await server.start_tcp()
        status, body = await _http(
            host, port, b"GET /nope HTTP/1.1\r\nHost: x\r\n\r\n"
        )
        assert status == "HTTP/1.1 404 Not Found"
        assert json.loads(body)["error"]["kind"] == "bad-request"

    run(main())


def test_stdio_loop(monkeypatch):
    """The stdin/stdout transport, in-process: frames in, lines out."""
    frames = (
        encode_frame({"id": 1, "op": "ping"})
        + b"\n"  # blank lines are skipped, not answered
        + encode_frame({"id": 2, "op": "docs"})
        + encode_frame({"id": 3, "op": "shutdown"})
        + encode_frame({"id": 4, "op": "ping"})  # after shutdown: unread
    )

    class _Stream:
        def __init__(self, buffer):
            self.buffer = buffer

    out = io.BytesIO()
    monkeypatch.setattr("sys.stdin", _Stream(io.BytesIO(frames)))
    monkeypatch.setattr("sys.stdout", _Stream(out))
    server = QueryServer()
    run(server.run_stdio())
    responses = [json.loads(line) for line in out.getvalue().splitlines()]
    assert [r["id"] for r in responses] == [1, 2, 3]
    assert responses[2]["result"]["shutting_down"]
    assert server.shutting_down


def test_shutdown_closes_idle_connection():
    """An idle reader loses the shutdown race and gets a clean EOF."""

    async def main():
        server = _server()
        host, port = await server.start_tcp()
        idle_reader, idle_writer = await asyncio.open_connection(host, port)
        reader, writer = await asyncio.open_connection(host, port)
        writer.write(encode_frame({"id": "bye", "op": "shutdown"}))
        await writer.drain()
        assert json.loads(await reader.readline())["ok"]
        await asyncio.wait_for(server.wait_closed(), timeout=10)
        assert await asyncio.wait_for(idle_reader.read(), timeout=5) == b""
        for w in (idle_writer, writer):
            w.close()
            await w.wait_closed()

    run(main())


def test_batch_select_failure_falls_back_per_job(monkeypatch):
    """A group-level batch failure degrades to per-job selects."""
    import repro.serve.server as server_module

    def explode(*args, **kwargs):
        raise RuntimeError("batch path down")

    monkeypatch.setattr(server_module, "batch_select", explode)

    async def main():
        server = QueryServer()
        texts = ["<a><b/></a>", "<a><a><b/></a></a>"]
        frames = [
            {"id": i, "op": "query", "text": text, "query": "//b"}
            for i, text in enumerate(texts)
        ]
        responses = await asyncio.gather(
            *(server.handle_frame(frame) for frame in frames)
        )
        assert all(r["ok"] for r in responses), responses
        assert responses[0]["result"]["paths"] == [[0]]
        assert responses[1]["result"]["paths"] == [[0, 0]]
        assert any(r["stats"]["batch"] == 2 for r in responses)

    run(main())


def test_internal_errors_are_structured(monkeypatch):
    server = _server()
    monkeypatch.setattr(
        server.store,
        "select",
        lambda *a, **k: (_ for _ in ()).throw(RuntimeError("boom")),
    )
    response = rpc(
        server, {"op": "query", "doc": "bib", "query": "//author"}
    )
    assert response["error"]["kind"] == "internal"
    assert "RuntimeError" in response["error"]["message"]


def test_verify_divergence_surfaces_as_engine_error(monkeypatch):
    server = _server()
    monkeypatch.setattr(
        server.store,
        "select",
        lambda *a, **k: (_ for _ in ()).throw(
            IncrementalMismatchError("diverged")
        ),
    )
    response = rpc(
        server,
        {"op": "query", "doc": "bib", "query": "//author", "verify": True},
    )
    assert response["error"]["kind"] == "engine"
    assert "diverged" in response["error"]["message"]


def test_translate_passes_protocol_errors_through():
    error = ProtocolError("bad-request", "as-is")
    assert _translate(error) is error


def test_replace_needs_exactly_one_payload():
    server = _server()
    both = rpc(
        server,
        {
            "op": "replace",
            "doc": "bib",
            "path": [0],
            "fragment": "<a/>",
            "text": "chunk",
        },
    )
    neither = rpc(server, {"op": "replace", "doc": "bib", "path": [0]})
    for response in (both, neither):
        assert response["error"]["kind"] == "bad-request"
        assert "exactly one" in response["error"]["message"]


def test_field_type_validation():
    with pytest.raises(ProtocolError) as info:
        string_field({"doc": 7}, "doc")
    assert "string" in str(info.value)
    with pytest.raises(ProtocolError) as info:
        bool_field({"verify": "yes"}, "verify")
    assert "boolean" in str(info.value)
