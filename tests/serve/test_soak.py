"""Concurrency soak: N TCP clients, mixed queries and edits, clean exit.

Every client owns one mutable document on the server and a local replica
it edits in lockstep — so each query response can be checked against
``replica.select`` immediately.  A shared read-only document is queried
by everyone to prove cross-client interleaving cannot bleed state: the
per-response counter snapshot must describe exactly that response's
batch group (``serve.selects == batch``), responses on one connection
must come back in request order even when pipelined, and a ``shutdown``
racing an in-flight query must still answer both before the listener
drains.
"""

from __future__ import annotations

import asyncio
import json
import random

from repro.core.pipeline import Document
from repro.serve import DocumentStore, QueryServer
from repro.serve.protocol import encode_frame
from repro.trees.xml import parse_document, serialize

from .util import QUERIES, editable_paths, random_document, random_element

CLIENTS = 6
ROUNDS = 6
ENGINES = ("naive", None, "numpy")
SHARED_QUERY = "xpath://a[b]"


async def _rpc(reader, writer, frame: dict) -> dict:
    """One lockstep request/response exchange on an NDJSON connection."""
    writer.write(encode_frame(frame))
    await writer.drain()
    line = await reader.readline()
    assert line.endswith(b"\n"), line
    return json.loads(line)


def _paths(document: Document, query: str, engine: str | None) -> list:
    return [list(path) for path in document.select(query, engine=engine)]


async def _client(
    cid: int, host: str, port: int, shared_oracle: Document
) -> dict:
    """One soak client; returns its view of the run for the final audit."""
    rng = random.Random(1000 + cid)
    engine = ENGINES[cid % len(ENGINES)]
    name = f"client{cid}"
    reader, writer = await asyncio.open_connection(host, port)
    sent = 0

    async def call(frame: dict) -> dict:
        nonlocal sent
        frame["id"] = f"{name}:{sent}"
        sent += 1
        response = await _rpc(reader, writer, frame)
        # Lockstep ordering: the response is for the request just sent.
        assert response["id"] == frame["id"], (frame, response)
        return response

    # The replica is round-tripped through text once so that the local
    # object and the server's parse are structurally identical; all
    # subsequent edits are applied to both sides from the same inputs.
    text = serialize(random_document(rng).element)
    replica = Document.from_text(text)
    response = await call({"op": "load", "doc": name, "text": text})
    assert response["ok"], response
    assert response["stats"]["counters"]["serve.store_loads"] == 1

    edits = 0
    for _ in range(ROUNDS):
        # One edit, mirrored on the replica.
        paths = editable_paths(replica)
        if paths and rng.random() < 0.3:
            path = rng.choice(paths)
            replica = replica.with_deleted(path)
            response = await call(
                {"op": "delete", "doc": name, "path": list(path)}
            )
        else:
            path = rng.choice(paths) if paths else (5,)
            fragment_text = serialize(random_element(rng, 1))
            replica = replica.with_replaced(
                path, parse_document(fragment_text)
            )
            response = await call(
                {
                    "op": "replace",
                    "doc": name,
                    "path": list(path),
                    "fragment": fragment_text,
                }
            )
        assert response["ok"], response
        edits += 1
        assert response["result"]["revision"] == edits
        counters = response["stats"]["counters"]
        # Edit responses carry edit work only — no select bleed.
        assert counters["serve.store_edits"] == 1
        assert "serve.selects" not in counters

        # Two queries against the owned document, verified both ways.
        for query in rng.sample(QUERIES, 2):
            response = await call(
                {
                    "op": "query",
                    "doc": name,
                    "query": query,
                    "engine": engine,
                    "verify": True,
                }
            )
            assert response["ok"], (name, query, response)
            assert response["result"]["paths"] == _paths(
                replica, query, engine
            ), (name, query)
            assert response["result"]["revision"] == edits
            stats = response["stats"]
            assert stats["counters"]["serve.selects"] == stats["batch"]

        # One query against the shared read-only document.
        response = await call(
            {"op": "query", "doc": "shared", "query": SHARED_QUERY}
        )
        assert response["ok"], response
        assert response["result"]["paths"] == _paths(
            shared_oracle, SHARED_QUERY, None
        )
        stats = response["stats"]
        assert stats["counters"]["serve.selects"] == stats["batch"]

    # Pipelined burst: five requests written before any response is
    # read; the responses must come back in request order.
    burst = []
    for _ in range(5):
        frame = {
            "id": f"{name}:{sent}",
            "op": "query",
            "doc": name,
            "query": "//b",
            "engine": engine,
        }
        sent += 1
        burst.append(frame)
        writer.write(encode_frame(frame))
    await writer.drain()
    expected = _paths(replica, "//b", engine)
    for frame in burst:
        line = await reader.readline()
        response = json.loads(line)
        assert response["id"] == frame["id"], (frame, response)
        assert response["result"]["paths"] == expected

    writer.close()
    await writer.wait_closed()
    return {"name": name, "sent": sent, "edits": edits}


async def _soak() -> None:
    server = QueryServer(DocumentStore(), batch_window=0.002)
    host, port = await server.start_tcp()
    shared_text = serialize(random_document(random.Random(42)).element)
    shared_oracle = Document.from_text(shared_text)
    response = await server.handle_frame(
        {"op": "load", "doc": "shared", "text": shared_text}
    )
    assert response["ok"], response

    reports = await asyncio.gather(
        *(_client(cid, host, port, shared_oracle) for cid in range(CLIENTS))
    )
    assert len(reports) == CLIENTS
    total_sent = sum(r["sent"] for r in reports)

    # The shared document was never edited by anyone.
    assert server.store.get("shared").revision == 0

    # Shutdown with an in-flight request: both frames are written before
    # any response is read, and both must be answered before the
    # connection closes and the listener drains.
    reader, writer = await asyncio.open_connection(host, port)
    writer.write(
        encode_frame(
            {"id": "last", "op": "query", "doc": "shared", "query": "//a"}
        )
        + encode_frame({"id": "bye", "op": "shutdown"})
    )
    await writer.drain()
    last = json.loads(await reader.readline())
    bye = json.loads(await reader.readline())
    assert last["id"] == "last" and last["ok"], last
    assert bye["id"] == "bye" and bye["result"]["shutting_down"], bye
    assert await reader.read() == b""  # server closed the connection
    writer.close()
    await writer.wait_closed()
    await asyncio.wait_for(server.wait_closed(), timeout=10)

    # Lifetime accounting: every frame of every client plus the two
    # final ones and the direct shared load landed exactly once.
    counters = server.lifetime.counters
    assert counters["serve.requests"] == total_sent + 3
    assert counters["serve.connections"] == CLIENTS + 1
    assert counters.get("serve.request_errors", 0) == 0
    assert counters.get("serve.verify_failures", 0) == 0
    report = server.stats_report()
    assert report["latency_ms"]["count"] == counters["serve.requests"]
    assert report["latency_ms"]["p50"] <= report["latency_ms"]["p99"]


def test_soak_tcp_clients_and_clean_shutdown():
    asyncio.run(asyncio.wait_for(_soak(), timeout=120))
