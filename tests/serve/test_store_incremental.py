"""The incremental-maintenance oracle: reselect ≡ fresh parse + select.

Random edit sequences against a :class:`DocumentStore`, with every
selection checked two ways: ``verify=True`` re-runs the store's own
one-shot path, and the test rebuilds the document from scratch (every
tree node fresh) and selects on that object — so a bug in structural
sharing, memo identity, or the relative-selection cache cannot hide.
Engines rotate per seed across naive/table/numpy.
"""

from __future__ import annotations

import os
import random

import pytest

from repro.core.pipeline import Document
from repro.perf.trees import MAX_REL_SELECTED, marked_engine
from repro.core.pipeline import _pattern_for
from repro.serve.store import DocumentStore

from .util import QUERIES, random_document, random_edit

SEEDS = int(os.environ.get("REPRO_SERVE_SEEDS", "200"))
ENGINES = ("naive", None, "numpy")

try:
    import numpy  # noqa: F401

    HAVE_NUMPY = True
except ImportError:
    HAVE_NUMPY = False


def test_incremental_reselect_oracle():
    store = DocumentStore()
    for seed in range(SEEDS):
        rng = random.Random(seed)
        engine = ENGINES[seed % len(ENGINES)]
        document = random_document(rng)
        store.load_document("doc", document)
        queries = rng.sample(QUERIES, 2)
        for _ in range(4):
            current = store.document("doc")
            kind, path, edited = random_edit(rng, current)
            if kind == "delete":
                store.delete_subtree("doc", path)
            elif path[0] >= len(current.element.content):
                # The grow fallback appends a child; reinstall wholesale.
                store.load_document("doc", edited)
            else:
                # Re-apply through the store to exercise its spine rebuild.
                fragment = edited.element_at(path)
                store.replace_subtree("doc", path, fragment)
            for query in queries:
                incremental = store.select(
                    "doc", query, engine=engine, verify=True
                )
                # Fresh-tree oracle: rebuilds every Tree node, so no
                # memo entry of the store can leak into it.  (A
                # serialize→reparse oracle would be unfaithful here:
                # random subtrees may hold *adjacent* text chunks,
                # which XML round-tripping merges into one ``#text``.)
                fresh = Document.from_element(
                    store.document("doc").element
                ).select(query, engine=engine)
                assert incremental == fresh, (seed, kind, path, query)


def test_incremental_skips_untouched_subtrees():
    """The dirty-set contract: only the spine is re-walked after an edit."""
    from repro import obs

    rng = random.Random(7)
    document = random_document(rng, body=8)
    store = DocumentStore()
    store.load_document("doc", document)
    store.select("doc", "//a")  # warm: full walk, memo populated
    size = store.get("doc").tree.size
    store.replace_subtree("doc", (5,), document.element_at((6,)))
    with obs.collecting() as stats:
        store.select("doc", "//a")
    walked = stats.counters["trees.incremental_walked"]
    assert 0 < walked < size, (walked, size)


def test_memo_pruned_after_many_edits():
    from repro import obs

    rng = random.Random(11)
    store = DocumentStore()
    store.load_document("doc", random_document(rng, body=3))
    with obs.collecting() as stats:
        for i in range(200):
            _kind, path, _ = random_edit(rng, store.document("doc"))
            store.replace_subtree("doc", path, random_document(rng).element_at((0,)))
            store.select("doc", "//a")
    stored = store.get("doc")
    limit = 4 * stored.tree.size + 256
    for _engine, memo in stored._memos.values():
        assert len(memo) <= limit
    assert stats.counters.get("serve.memo_pruned", 0) > 0


def test_rel_selected_cache_is_capped():
    document = random_document(random.Random(3))
    query = _pattern_for("//a", document.alphabet)
    engine = marked_engine(query.compiled())
    engine._rel_selected = dict.fromkeys(
        ((-i, frozenset({i})) for i in range(1, MAX_REL_SELECTED + 1)),
        frozenset(),
    )
    # A full-cache engine still evaluates correctly via the overlay.
    memo: dict = {}
    assert engine.incremental_evaluate(document.tree, memo) == engine.evaluate(
        document.tree
    )
    assert len(engine._rel_selected) == MAX_REL_SELECTED
    engine._rel_selected.clear()


@pytest.mark.skipif(not HAVE_NUMPY, reason="numpy not installed")
def test_encode_with_memo_matches_full_reencoding():
    """The numpy dirty-set path: memoized encodings ≡ full re-encoding."""
    import numpy as np

    from repro.perf import nptrees

    rng = random.Random(23)
    document = random_document(rng, body=6)
    memo: dict = {}
    for step in range(10):
        enc = nptrees.encode_with_memo(document.tree, memo)
        fresh = nptrees.EncodedDocument(document.tree)
        for name in ("types", "labels", "arity", "child_start", "child_index"):
            assert np.array_equal(
                getattr(enc, name), getattr(fresh, name)
            ), (step, name)
        assert enc.paths == fresh.paths
        assert [lv.tolist() for lv in enc.levels] == [
            lv.tolist() for lv in fresh.levels
        ]
        _kind, _path, document = random_edit(rng, document)


@pytest.mark.skipif(not HAVE_NUMPY, reason="numpy not installed")
def test_numpy_type_memo_hits_after_edit():
    from repro import obs
    from repro.perf import nptrees

    rng = random.Random(29)
    store = DocumentStore()
    store.load_document("doc", random_document(rng, body=8))
    store.select("doc", "//a", engine="numpy")
    store.replace_subtree("doc", (5,), store.document("doc").element_at((6,)))
    with obs.collecting() as stats:
        store.select("doc", "//a", engine="numpy")
    size = store.get("doc").tree.size
    hits = stats.counters.get("npkernel.type_memo_hits", 0)
    assert hits > size // 2, (hits, size)


def test_verify_mode_raises_on_divergence(monkeypatch):
    from repro.serve.store import IncrementalMismatchError

    store = DocumentStore()
    store.load_document("doc", random_document(random.Random(1)))
    query = _pattern_for("//b", store.document("doc").alphabet)
    engine = marked_engine(query.compiled())
    monkeypatch.setattr(
        engine,
        "incremental_evaluate",
        lambda tree, memo: frozenset({(0, 0, 0, 0, 0)}),
    )
    with pytest.raises(IncrementalMismatchError):
        store.select("doc", "//b", verify=True)
