"""Lemma 4.7: behavior functions determine the computed query."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ranked.behavior import (
    assumed_sets,
    behavior_functions,
    evaluate_query_via_behavior,
    states_closure,
    up_state,
)
from repro.ranked.examples import circuit_value_query
from repro.trees.generators import random_binary_circuit
from repro.trees.tree import Tree


class TestBehaviorFunctions:
    def test_leaf_behavior_depends_only_on_label(self):
        """Lemma 4.7 item 1."""
        qa = circuit_value_query()
        t1 = Tree.parse("AND(1, 0)")
        t2 = Tree.parse("OR(1, AND(1, 0))")
        functions1 = behavior_functions(qa.automaton, t1)
        functions2 = behavior_functions(qa.automaton, t2)
        # 1-labeled leaves: (0,) in t1 and (0,) in t2.
        assert functions1[(0,)] == functions2[(0,)]

    def test_behavior_composes_from_children(self):
        """Lemma 4.7 item 2: equal-children subtrees get equal functions."""
        qa = circuit_value_query()
        tree = Tree.parse("OR(AND(1, 0), AND(1, 0))")
        functions = behavior_functions(qa.automaton, tree)
        assert functions[(0,)] == functions[(1,)]

    def test_up_state(self):
        behavior = {1: 2, 2: 2, 3: 1}
        assert up_state(behavior, 3) == 2
        assert up_state({1: 2}, 1) is None  # runs off the function

    def test_states_closure_matches_assumed(self):
        qa = circuit_value_query()
        tree = Tree.parse("AND(OR(1, 0), OR(1, 1))")
        assumed, halting = assumed_sets(qa.automaton, tree)
        trace = qa.automaton.run(tree)
        for path in tree.nodes():
            observed = {
                conf[path] for conf in trace if path in conf
            }
            assert assumed[path] == observed, path
        final = trace[-1]
        assert list(final) == [()] and final[()] == halting


class TestLinearEvaluation:
    @given(st.integers(min_value=0, max_value=4), st.integers(min_value=0, max_value=300))
    @settings(max_examples=80, deadline=None)
    def test_agrees_with_cut_simulation(self, height, seed):
        """The executable content of Lemma 4.7."""
        qa = circuit_value_query()
        tree = random_binary_circuit(height, seed)
        assert evaluate_query_via_behavior(qa, tree) == qa.evaluate(tree)
