"""Theorem 4.8: MSO unary queries → QA^r (Figure 5 construction)."""

import pytest
from hypothesis import given, settings

from repro.logic.compile_trees import compile_tree_query
from repro.logic.semantics import tree_query
from repro.logic.syntax import (
    And,
    Edge,
    Exists,
    Label,
    Less,
    Not,
    Var,
    leaf,
    root,
)
from repro.ranked.behavior import evaluate_query_via_behavior
from repro.ranked.mso_to_qa import build_query_qar, two_phase_evaluate
from repro.trees.tree import Tree

from ..conftest import full_binary_trees

x, y = Var("x"), Var("y")

QUERIES = [
    ("label a", Label(x, "a")),
    ("has a-child", Exists(y, And(Edge(x, y), Label(y, "a")))),
    ("left sibling b", Exists(y, And(Less(y, x), Label(y, "b")))),
    ("leaf under a-root", And(leaf(x), Exists(y, And(root(y), Label(y, "a"))))),
]

SAMPLE_TREES = [
    Tree.parse("a"),
    Tree.parse("b"),
    Tree.parse("a(a, b)"),
    Tree.parse("b(a(a, a), b)"),
    Tree.parse("a(b(b, a), a(a, b))"),
    Tree.parse("b(b(a, b), b(b, b))"),
]


from functools import lru_cache


@lru_cache(maxsize=1)
def _compiled_has_a_child():
    phi = QUERIES[1][1]
    return (
        compile_tree_query(phi, x, ["a", "b"]),
        build_query_qar(phi, x, ["a", "b"]),
        phi,
    )


@pytest.fixture(scope="module")
def compiled():
    return {
        name: (compile_tree_query(phi, x, ["a", "b"]), build_query_qar(phi, x, ["a", "b"]), phi)
        for name, phi in QUERIES
    }


class TestFigure5Algorithm:
    @pytest.mark.parametrize("name", [n for n, _ in QUERIES])
    def test_two_phase_matches_semantics(self, compiled, name):
        d, _qa, phi = compiled[name]
        for tree in SAMPLE_TREES:
            assert two_phase_evaluate(d, tree) == tree_query(tree, phi, x), (
                name, str(tree)
            )

    def test_two_phase_handles_unary_nodes(self, compiled):
        """The algorithm (unlike the binary QA^r) covers arity 1 directly."""
        d, _qa, phi = compiled["label a"]
        chain = Tree.parse("a(b(a(a)))")
        assert two_phase_evaluate(d, chain) == tree_query(chain, phi, x)


class TestTheorem48Automaton:
    @pytest.mark.parametrize("name", [n for n, _ in QUERIES])
    def test_qar_computes_the_query(self, compiled, name):
        _d, qa, phi = compiled[name]
        for tree in SAMPLE_TREES:
            assert qa.evaluate(tree) == tree_query(tree, phi, x), (name, str(tree))

    @pytest.mark.parametrize("name", [n for n, _ in QUERIES])
    def test_behavior_evaluation_agrees(self, compiled, name):
        """The constructed QA^r is an honest QA^r: Lemma 4.7 applies."""
        _d, qa, phi = compiled[name]
        for tree in SAMPLE_TREES:
            assert evaluate_query_via_behavior(qa, tree) == qa.evaluate(tree)

    @given(full_binary_trees(max_height=3))
    @settings(max_examples=40, deadline=None)
    def test_property_random_full_binary(self, tree):
        d, qa, phi = _compiled_has_a_child()
        reference = tree_query(tree, phi, x)
        assert two_phase_evaluate(d, tree) == reference
        assert qa.evaluate(tree) == reference

    def test_run_is_a_legal_cut_run(self, compiled):
        """The produced automaton satisfies Definition 4.1 mechanically:
        its run starts and ends at the root and fires legal transitions
        (the TwoWayRankedAutomaton runner validates this by construction)."""
        _d, qa, _phi = compiled["label a"]
        trace = qa.automaton.run(Tree.parse("a(b, a)"))
        assert list(trace[0]) == [()]
        assert list(trace[-1]) == [()]


class TestGeneralRank:
    """The rank-m generalization of the pebbling construction."""

    def test_rank_three_queries(self):
        import random

        from repro.ranked.mso_to_qa import build_query_qar

        rng = random.Random(3)

        def wide_tree(depth):
            label = rng.choice("ab")
            if depth == 0 or rng.random() < 0.3:
                return Tree(label)
            arity = rng.choice([2, 3])
            return Tree(label, [wide_tree(depth - 1) for _ in range(arity)])

        trees = [wide_tree(2) for _ in range(25)] + [
            Tree.parse("a(b, a, b)"),
            Tree.parse("b(a(a, b, a), b, a)"),
        ]
        for _name, phi in QUERIES[:2]:
            qa = build_query_qar(phi, x, ["a", "b"], max_rank=3)
            for tree in trees:
                assert qa.evaluate(tree) == tree_query(tree, phi, x), str(tree)

    def test_rank_below_two_rejected(self):
        from repro.logic.compile_trees import compile_tree_query
        from repro.ranked.mso_to_qa import QueryAutomatonBuilder
        from repro.strings.dfa import AutomatonError

        d = compile_tree_query(QUERIES[0][1], x, ["a", "b"])
        with pytest.raises(AutomatonError):
            QueryAutomatonBuilder(d, ["a", "b"], max_rank=1)
