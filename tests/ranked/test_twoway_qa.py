"""2DTA^r cut semantics and QA^r (Definitions 4.1, 4.3; Examples 4.2, 4.4)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ranked.examples import (
    circuit_acceptor,
    circuit_reference_query,
    circuit_value_query,
)
from repro.ranked.twoway import RankedQueryAutomaton, TwoWayRankedAutomaton
from repro.strings.dfa import AutomatonError
from repro.trees.generators import evaluate_circuit, random_binary_circuit
from repro.trees.tree import Tree


class TestExample42:
    def test_accepts_true_circuits(self):
        acceptor = circuit_acceptor()
        assert acceptor.accepts(Tree.parse("OR(0, 1)"))
        assert not acceptor.accepts(Tree.parse("AND(0, 1)"))

    @given(st.integers(min_value=0, max_value=4), st.integers(min_value=0, max_value=200))
    @settings(max_examples=60, deadline=None)
    def test_agrees_with_evaluator(self, height, seed):
        acceptor = circuit_acceptor()
        tree = random_binary_circuit(height, seed)
        assert acceptor.accepts(tree) == (evaluate_circuit(tree) == 1)

    def test_run_starts_and_ends_at_root(self):
        acceptor = circuit_acceptor()
        trace = acceptor.run(Tree.parse("AND(1, 1)"))
        assert list(trace[0]) == [()]
        assert list(trace[-1]) == [()]

    def test_visited_states_sequence(self):
        """Every node is visited in the same state sequence in the run
        (the determinism argument after Definition 4.1)."""
        acceptor = circuit_acceptor()
        tree = Tree.parse("AND(OR(1, 1), OR(0, 1))")
        visits = acceptor.visited_states(tree)
        assert visits[()][0] == "s"
        assert visits[(0, 0)] == ["s", "u"]  # down, then leaf turnaround

    def test_single_leaf_circuit(self):
        acceptor = circuit_acceptor()
        assert acceptor.accepts(Tree.parse("1"))
        assert not acceptor.accepts(Tree.parse("0"))


class TestExample44:
    def test_selects_true_subcircuits(self):
        qa = circuit_value_query()
        tree = Tree.parse("AND(OR(1, 1), OR(0, 1))")
        assert qa.evaluate(tree) == frozenset(
            {(), (0,), (1,), (0, 0), (0, 1), (1, 1)}
        )

    def test_false_circuit_still_selects_true_parts(self):
        qa = circuit_value_query()
        tree = Tree.parse("AND(0, 1)")
        # F = Q: the run accepts, so the true leaf is selected.
        assert qa.evaluate(tree) == frozenset({(1,)})

    @given(st.integers(min_value=0, max_value=4), st.integers(min_value=0, max_value=100))
    @settings(max_examples=50, deadline=None)
    def test_agrees_with_reference(self, height, seed):
        qa = circuit_value_query()
        tree = random_binary_circuit(height, seed)
        assert qa.evaluate(tree) == circuit_reference_query(tree)


class TestModelValidation:
    def test_u_d_disjointness_enforced(self):
        with pytest.raises(AutomatonError):
            TwoWayRankedAutomaton.build(
                {"q"}, {"a"}, 2, "q", set(),
                {("q", "a")}, {("q", "a")},
                {}, {}, {}, {},
            )

    def test_delta_down_length_checked(self):
        with pytest.raises(AutomatonError):
            TwoWayRankedAutomaton.build(
                {"q"}, {"a"}, 2, "q", set(),
                set(), {("q", "a")},
                {}, {}, {}, {("q", "a", 2): ("q",)},
            )

    def test_selection_labels_validated(self):
        base = circuit_acceptor()
        with pytest.raises(AutomatonError):
            RankedQueryAutomaton(base, frozenset({("s", "nope")}))

    def test_rejecting_run_selects_nothing(self):
        acceptor = circuit_acceptor()
        qa = RankedQueryAutomaton(
            acceptor, frozenset({("u", "1")})
        )
        # AND(0,1) evaluates to 0: run ends in v0 ∉ F={v1} → no selection,
        # even though the 1-leaf is visited in the selecting pair (u, 1).
        assert qa.evaluate(Tree.parse("AND(0, 1)")) == frozenset()
        assert qa.evaluate(Tree.parse("OR(0, 1)")) == frozenset({(1,)})
