"""Bottom-up ranked tree automata (Definition 2.6, Theorem 2.8 toolkit)."""

import pytest

from repro.ranked.bta import (
    DeterministicRankedAutomaton,
    RankedTreeAutomaton,
    boolean_circuit_dbta,
)
from repro.strings.dfa import AutomatonError
from repro.trees.generators import (
    enumerate_trees,
    evaluate_circuit,
    random_binary_circuit,
)
from repro.trees.tree import Tree


class TestDeterministic:
    def test_circuit_evaluator(self):
        dbta = boolean_circuit_dbta()
        for seed in range(10):
            for height in range(4):
                tree = random_binary_circuit(height, seed * 10 + height)
                assert dbta.accepts(tree) == (evaluate_circuit(tree) == 1)

    def test_run_records_every_node(self):
        dbta = boolean_circuit_dbta()
        tree = Tree.parse("AND(1, OR(0, 1))")
        states = dbta.run(tree)
        assert states[(1, 0)] == 0
        assert states[(1,)] == 1
        assert states[()] == 1

    def test_partial_run_dies(self):
        dbta = boolean_circuit_dbta()
        assert dbta.state_of(Tree.parse("AND(1, 1, 1)")) is None
        assert not dbta.accepts(Tree.parse("AND(1, 1, 1)"))

    def test_complement(self):
        dbta = boolean_circuit_dbta()
        complement = dbta.complement()
        for seed in range(5):
            tree = random_binary_circuit(2, seed)
            assert complement.accepts(tree) != dbta.accepts(tree)


def nondeterministic_has_a() -> RankedTreeAutomaton:
    """Guess-and-check: some node is labeled a (rank ≤ 2)."""
    states = {"?", "!"}
    transitions = {}
    for label in ("a", "b"):
        hit = label == "a"
        transitions[(label, ())] = frozenset({"!"} if hit else {"?"}) | (
            frozenset({"?"}) if not hit else frozenset()
        )
        if hit:
            transitions[(label, ())] = frozenset({"!"})
        else:
            transitions[(label, ())] = frozenset({"?"})
        for c1 in states:
            for c2 in states:
                out = "!" if hit or "!" in (c1, c2) else "?"
                transitions[(label, (c1, c2))] = frozenset({out})
            out1 = "!" if hit or c1 == "!" else "?"
            transitions[(label, (c1,))] = frozenset({out1})
    return RankedTreeAutomaton(
        frozenset(states), frozenset({"a", "b"}), 2, transitions, frozenset({"!"})
    )


class TestNondeterministic:
    def test_semantics(self):
        nbta = nondeterministic_has_a()
        assert nbta.accepts(Tree.parse("b(b, a)"))
        assert not nbta.accepts(Tree.parse("b(b, b)"))

    def test_emptiness_and_witness(self):
        nbta = nondeterministic_has_a()
        assert not nbta.is_empty()
        witness = nbta.witness()
        assert witness is not None and nbta.accepts(witness)

    def test_empty_language(self):
        empty = RankedTreeAutomaton(
            frozenset({"q"}), frozenset({"a"}), 2, {}, frozenset({"q"})
        )
        assert empty.is_empty()
        assert empty.witness() is None

    def test_determinization(self):
        nbta = nondeterministic_has_a()
        det = nbta.determinized()
        for tree in enumerate_trees(["a", "b"], 4, max_arity=2):
            assert det.accepts(tree) == nbta.accepts(tree), str(tree)

    def test_intersection(self):
        has_a = nondeterministic_has_a()
        both = has_a.intersection(has_a)
        for tree in enumerate_trees(["a", "b"], 3, max_arity=2):
            assert both.accepts(tree) == has_a.accepts(tree)

    def test_rank_enforced(self):
        nbta = nondeterministic_has_a()
        with pytest.raises(AutomatonError):
            nbta.accepts(Tree.parse("a(b, b, b)"))
