"""MSO type partitions (Φ_k on a bounded universe) and compositionality."""

import itertools

from repro.games.types import (
    composition_respects_types,
    partition_strings,
    partition_trees,
    type_of,
)
from repro.trees.tree import Tree


def words_up_to(alphabet: str, length: int) -> list[str]:
    return [
        "".join(w)
        for n in range(length + 1)
        for w in itertools.product(alphabet, repeat=n)
    ]


class TestStringTypes:
    def test_zero_rounds_single_class(self):
        """Φ_0 over a one-letter alphabet: nonemptiness is not even
        visible without a move... actually with 0 rounds everything is
        equivalent."""
        classes = partition_strings(words_up_to("a", 3), 0)
        assert len(classes) == 1

    def test_one_round_counts_letters_to_one(self):
        """k = 1 distinguishes 'contains an a' and 'contains a b'."""
        classes = partition_strings(["", "a", "b", "ab", "aab"], 1)
        # "" | a, aa-style | b | ab, aab: presence profiles {∅, {a}, {b}, {a,b}}
        assert len(classes) == 4

    def test_partition_is_an_equivalence(self):
        universe = words_up_to("ab", 3)
        classes = partition_strings(universe, 1)
        assert sum(len(c) for c in classes) == len(universe)
        flattened = [w for c in classes for w in c]
        assert sorted(flattened) == sorted(universe)

    def test_refinement_with_more_rounds(self):
        """Φ_{k+1} refines Φ_k (more rounds distinguish more)."""
        universe = words_up_to("a", 4)
        coarse = partition_strings(universe, 1)
        fine = partition_strings(universe, 2)
        assert len(fine) >= len(coarse)

    def test_type_of(self):
        universe = ["", "a", "aa", "b"]
        index_a = type_of("a", universe, 1)
        index_aa = type_of("aa", universe, 1)
        assert index_a == index_aa  # both are "some a, no b" at k = 1

    def test_proposition_2_4_composition(self):
        """No counterexample to compositionality in a small universe."""
        assert composition_respects_types(
            ["", "a", "b", "ab"], ["", "a", "b"], 1
        )


class TestTreeTypes:
    def test_tree_partition(self):
        trees = [
            Tree.parse("a"),
            Tree.parse("b"),
            Tree.parse("a(a)"),
            Tree.parse("a(b)"),
            Tree.parse("a(a, a)"),
        ]
        classes = partition_trees(trees, 1)
        # k=1 at least separates by label inventory.
        assert len(classes) >= 3
        assert sum(len(c) for c in classes) == len(trees)
