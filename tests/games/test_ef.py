"""Ehrenfeucht–Fraïssé MSO games (Section 2.1): Propositions 2.3, 2.4, 2.7."""

import pytest

from repro.games.ef import (
    distinguishing_depth,
    mso_equivalent_strings,
    mso_equivalent_trees,
    mso_equivalent_trees_pointed,
)
from repro.logic.compile_strings import compile_sentence
from repro.logic.semantics import string_satisfies
from repro.trees.tree import Tree


class TestStringGames:
    def test_zero_rounds_everything_equivalent(self):
        assert mso_equivalent_strings("a", "bbbb", 0)

    def test_one_round_sees_labels(self):
        assert not mso_equivalent_strings("a", "b", 1)
        assert mso_equivalent_strings("aa", "aaa", 1)

    def test_two_rounds_see_small_counts(self):
        # One a vs two a's: spoiler picks both a's.
        assert not mso_equivalent_strings("a", "aa", 2)

    def test_identical_structures_always_equivalent(self):
        for k in range(3):
            assert mso_equivalent_strings("abab", "abab", k)

    def test_distinguishing_depth_monotone(self):
        depth = distinguishing_depth("a", "aa", max_rounds=2)
        assert depth == 2
        # Once distinguishable, higher k stays distinguishable.
        assert not mso_equivalent_strings("a", "aa", 2)

    def test_proposition_2_3_against_formulas(self):
        """Game equivalence ⟹ agreement on every depth-k sentence.

        (Proposition 2.3 in one direction, checked with the compiler.)
        """
        from repro.logic.syntax import Exists, Forall, Label, Less, Var

        x, y = Var("x"), Var("y")
        sentences_depth_1 = [
            Exists(x, Label(x, "a")),
            Forall(x, Label(x, "b")),
        ]
        pairs = [("ab", "ba"), ("aab", "aba"), ("bb", "bbb")]
        for u, v in pairs:
            if mso_equivalent_strings(u, v, 1):
                for phi in sentences_depth_1:
                    assert string_satisfies(u, phi) == string_satisfies(v, phi)

    def test_proposition_2_4_composition(self):
        """w ≡ₖ w' and v ≡ₖ v' imply wv ≡ₖ w'v' (checked for k = 1)."""
        candidates = ["a", "b", "ab", "ba", "aa"]
        k = 1
        for w in candidates:
            for w2 in candidates:
                if not mso_equivalent_strings(w, w2, k):
                    continue
                for v in ["a", "b"]:
                    for v2 in ["a", "b"]:
                        if mso_equivalent_strings(v, v2, k):
                            assert mso_equivalent_strings(w + v, w2 + v2, k), (
                                w, w2, v, v2
                            )


class TestTreeGames:
    def test_labels_matter(self):
        assert not mso_equivalent_trees(Tree.parse("a"), Tree.parse("b"), 1)

    def test_small_trees_one_round(self):
        s = Tree.parse("a(b, b)")
        t = Tree.parse("a(b, b, b)")
        assert mso_equivalent_trees(s, t, 1)

    def test_proposition_2_7_composition(self):
        """tᵢ ≡ₖ sᵢ implies σ(t₁, t₂) ≡ₖ σ(s₁, s₂) (k = 1)."""
        k = 1
        pairs = [
            (Tree.parse("a"), Tree.parse("a")),
            (Tree.parse("b(a)"), Tree.parse("b(a, a)")),
        ]
        for t1, s1 in pairs:
            for t2, s2 in pairs:
                if mso_equivalent_trees(t1, s1, k) and mso_equivalent_trees(
                    t2, s2, k
                ):
                    assert mso_equivalent_trees(
                        Tree("c", [t1, t2]), Tree("c", [s1, s2]), k
                    )

    def test_pointed_equivalence(self):
        s = Tree.parse("a(b, c)")
        # Within one tree: the two children are distinguishable with one
        # round (their labels differ) even as distinguished points.
        assert not mso_equivalent_trees_pointed(s, (0,), s, (1,), 1)
        assert mso_equivalent_trees_pointed(s, (0,), s, (0,), 2)
