"""Büchi's theorem, executable (Theorem 2.5) + marked unary queries."""

import pytest

from repro.logic.compile_strings import (
    CompilationError,
    compile_query,
    compile_sentence,
    evaluate_marked_query,
    mark_word,
)
from repro.logic.semantics import string_query, string_satisfies
from repro.logic.syntax import (
    And,
    Edge,
    Exists,
    ExistsSet,
    Forall,
    Implies,
    Label,
    Less,
    Member,
    Not,
    Or,
    SetVar,
    Var,
    fresh_var,
)

from ..conftest import all_words

x, y = Var("x"), Var("y")
X = SetVar("X")


def succ(a, b):
    z = fresh_var()
    return And(Less(a, b), Not(Exists(z, And(Less(a, z), Less(z, b)))))


SENTENCES = [
    ("contains a", Exists(x, Label(x, "a"))),
    ("all a", Forall(x, Label(x, "a"))),
    ("a before some b", Exists(x, Exists(y, And(Less(x, y), And(Label(x, "a"), Label(y, "b")))))),
    ("no two adjacent a", Forall(x, Forall(y, Implies(And(succ(x, y), Label(x, "a")), Not(Label(y, "a")))))),
]


class TestSentences:
    @pytest.mark.parametrize("name,phi", SENTENCES, ids=[n for n, _ in SENTENCES])
    def test_agrees_with_naive_semantics(self, name, phi):
        dfa = compile_sentence(phi, ["a", "b"])
        for word in all_words(["a", "b"], 5):
            assert dfa.accepts(word) == string_satisfies(word, phi), word

    def test_genuinely_second_order(self):
        """An MSO (not FO) property: even length, via an alternating set."""
        even = ExistsSet(
            X,
            Forall(
                x,
                And(
                    Implies(Not(Exists(y, Less(y, x))), Member(x, X)),
                    And(
                        Forall(y, Implies(And(Member(x, X), succ(x, y)), Not(Member(y, X)))),
                        And(
                            Forall(y, Implies(And(Not(Member(x, X)), succ(x, y)), Member(y, X))),
                            Implies(Not(Exists(y, Less(x, y))), Not(Member(x, X))),
                        ),
                    ),
                ),
            ),
        )
        dfa = compile_sentence(even, ["a"])
        assert len(dfa.states) == 2  # minimal parity automaton
        for n in range(7):
            assert dfa.accepts(["a"] * n) == (n % 2 == 0)

    def test_free_variables_rejected(self):
        with pytest.raises(CompilationError):
            compile_sentence(Label(x, "a"), ["a"])

    def test_edge_rejected_on_strings(self):
        with pytest.raises(CompilationError):
            compile_sentence(Exists(x, Exists(y, Edge(x, y))), ["a"])


QUERIES = [
    ("a with later b", And(Label(x, "a"), Exists(y, And(Less(x, y), Label(y, "b"))))),
    ("first position", Not(Exists(y, Less(y, x)))),
    ("last a", And(Label(x, "a"), Not(Exists(y, And(Less(x, y), Label(y, "a")))))),
]


class TestQueries:
    @pytest.mark.parametrize("name,phi", QUERIES, ids=[n for n, _ in QUERIES])
    def test_marked_dfa_agrees(self, name, phi):
        qdfa = compile_query(phi, x, ["a", "b"])
        for word in all_words(["a", "b"], 5):
            reference = string_query(word, phi, x)
            linear = evaluate_marked_query(qdfa, word)
            direct = frozenset(
                i for i in range(1, len(word) + 1) if qdfa.accepts(mark_word(word, i))
            )
            assert linear == reference == direct, word

    def test_zero_or_two_marks_rejected(self):
        qdfa = compile_query(Label(x, "a"), x, ["a", "b"])
        assert not qdfa.accepts([("a", 0), ("a", 0)])
        assert not qdfa.accepts([("a", 1), ("a", 1)])
        assert qdfa.accepts([("a", 1), ("a", 0)])

    def test_wrong_free_variables_rejected(self):
        with pytest.raises(CompilationError):
            compile_query(Label(y, "a"), x, ["a"])
