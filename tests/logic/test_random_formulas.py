"""Property tests: random MSO formulas, compilers vs naive semantics.

Random formula generation gives the expressiveness theorems adversarial
coverage beyond the hand-picked queries: any formula the strategy can
build must compile to an automaton that agrees with direct model checking
everywhere (on bounded inputs).
"""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.games.ef import mso_equivalent_strings
from repro.logic.compile_strings import compile_query, compile_sentence
from repro.logic.compile_trees import compile_tree_query, mark
from repro.logic.semantics import string_query, string_satisfies, tree_query
from repro.logic.syntax import (
    And,
    Edge,
    Equal,
    Exists,
    Forall,
    Label,
    Less,
    Not,
    Or,
    Var,
)
from repro.trees.generators import enumerate_trees
from repro.unranked.dbta import evaluate_marked_query

x, y, z = Var("x"), Var("y"), Var("z")


def string_atoms(variables):
    options = []
    for v in variables:
        options.append(st.just(Label(v, "a")))
        options.append(st.just(Label(v, "b")))
    for v in variables:
        for w in variables:
            options.append(st.just(Less(v, w)))
            options.append(st.just(Equal(v, w)))
    return st.one_of(options)


def string_formulas(variables, depth: int):
    """Closed-under-{¬,∧,∨,∃,∀} random formulas over the given free vars."""
    if depth == 0:
        return string_atoms(variables)
    sub = string_formulas(variables, depth - 1)
    fresh = {1: y, 2: z}[depth]
    quantified_inner = string_formulas(variables + [fresh], depth - 1)
    return st.one_of(
        sub,
        st.builds(Not, sub),
        st.builds(And, sub, sub),
        st.builds(Or, sub, sub),
        st.builds(lambda inner: Exists(fresh, inner), quantified_inner),
        st.builds(lambda inner: Forall(fresh, inner), quantified_inner),
    )


class TestRandomStringFormulas:
    @given(string_formulas([x], 2))
    @settings(max_examples=25, deadline=None)
    def test_query_compiler_agrees_with_naive(self, phi):
        compiled = compile_query(phi, x, ["a", "b"])
        from repro.logic.compile_strings import evaluate_marked_query as emq

        for n in range(4):
            for letters in itertools.product("ab", repeat=n):
                word = list(letters)
                assert emq(compiled, word) == string_query(word, phi, x), (
                    phi, word
                )

    @given(string_formulas([], 2))
    @settings(max_examples=25, deadline=None)
    def test_sentence_compiler_agrees_with_naive(self, phi):
        if phi.free_vars():
            return  # depth-0 draws may be atoms over no variables — skip
        compiled = compile_sentence(phi, ["a", "b"])
        for n in range(4):
            for letters in itertools.product("ab", repeat=n):
                word = list(letters)
                assert compiled.accepts(word) == string_satisfies(word, phi)

    @given(string_formulas([], 1))
    @settings(max_examples=15, deadline=None)
    def test_game_equivalent_words_agree_on_compiled_sentences(self, phi):
        """Proposition 2.3, adversarially: if the duplicator wins the
        k-round game, no depth-k sentence separates the words."""
        if phi.free_vars():
            return
        k = phi.quantifier_depth()
        if k > 2:
            return
        compiled = compile_sentence(phi, ["a", "b"])
        words = ["", "a", "b", "ab", "ba", "aab", "abb"]
        for u in words:
            for v in words:
                if mso_equivalent_strings(u, v, k):
                    assert compiled.accepts(u) == compiled.accepts(v), (
                        phi, u, v, k
                    )


def tree_atoms(variables):
    options = []
    for v in variables:
        options.append(st.just(Label(v, "a")))
        options.append(st.just(Label(v, "b")))
    for v in variables:
        for w in variables:
            options.append(st.just(Less(v, w)))
            options.append(st.just(Edge(v, w)))
            options.append(st.just(Equal(v, w)))
    return st.one_of(options)


def tree_formulas(variables, depth: int):
    if depth == 0:
        return tree_atoms(variables)
    sub = tree_formulas(variables, depth - 1)
    fresh = {1: y, 2: z}[depth]
    quantified_inner = tree_formulas(variables + [fresh], depth - 1)
    return st.one_of(
        sub,
        st.builds(Not, sub),
        st.builds(And, sub, sub),
        st.builds(Or, sub, sub),
        st.builds(lambda inner: Exists(fresh, inner), quantified_inner),
        st.builds(lambda inner: Forall(fresh, inner), quantified_inner),
    )


TREES = enumerate_trees(["a", "b"], 3)


class TestRandomTreeFormulas:
    @given(tree_formulas([x], 2))
    @settings(max_examples=15, deadline=None)
    def test_tree_query_compiler_agrees_with_naive(self, phi):
        automaton = compile_tree_query(phi, x, ["a", "b"])
        for tree in TREES:
            assert evaluate_marked_query(automaton, tree, mark) == tree_query(
                tree, phi, x
            ), (phi, str(tree))
