"""The MSO reference semantics and formula structure."""

import pytest

from repro.logic.syntax import (
    And,
    Descendant,
    Edge,
    Equal,
    Exists,
    ExistsSet,
    Forall,
    Formula,
    Implies,
    Label,
    Less,
    Member,
    Not,
    Or,
    SetVar,
    Var,
    ancestor,
    false_formula,
    first_sibling,
    last_sibling,
    leaf,
    next_sibling,
    root,
    true_formula,
)
from repro.logic.semantics import (
    string_query,
    string_satisfies,
    tree_query,
    tree_satisfies,
)
from repro.trees.tree import Tree

x, y, z = Var("x"), Var("y"), Var("z")
X = SetVar("X")


class TestSyntax:
    def test_free_variables(self):
        phi = Exists(y, And(Edge(x, y), Member(y, X)))
        assert phi.free_vars() == {x}
        assert phi.free_set_vars() == {X}

    def test_quantifier_depth(self):
        phi = Exists(x, ExistsSet(X, Forall(y, Member(y, X))))
        assert phi.quantifier_depth() == 3

    def test_operator_sugar(self):
        phi = Label(x, "a") & ~Label(x, "b") | Label(x, "c")
        assert isinstance(phi, Or)
        implies = Label(x, "a") >> Label(x, "b")
        assert isinstance(implies, Implies)


class TestStringSemantics:
    def test_label_and_order(self):
        assert string_satisfies("ab", Exists(x, Label(x, "a")))
        assert not string_satisfies("bb", Exists(x, Label(x, "a")))
        before = Exists(x, Exists(y, And(Less(x, y), And(Label(x, "a"), Label(y, "b")))))
        assert string_satisfies("ab", before)
        assert not string_satisfies("ba", before)

    def test_set_quantifier(self):
        # There is a set containing every a-position.
        phi = ExistsSet(X, Forall(x, Implies(Label(x, "a"), Member(x, X))))
        assert string_satisfies("aba", phi)

    def test_string_query_positions(self):
        # First position: nothing before it.
        first = Not(Exists(y, Less(y, x)))
        assert string_query("abc", first, x) == frozenset({1})
        assert string_query("", first, x) == frozenset()

    def test_truth_constants(self):
        assert string_satisfies("a", true_formula())
        assert not string_satisfies("a", false_formula())


class TestTreeSemantics:
    def test_edge(self):
        tree = Tree.parse("a(b, c)")
        has_b_child = Exists(x, Exists(y, And(Edge(x, y), Label(y, "b"))))
        assert tree_satisfies(tree, has_b_child)
        assert not tree_satisfies(Tree.parse("a(c)"), has_b_child)

    def test_sibling_order_is_not_document_order(self):
        tree = Tree.parse("a(b(c), d)")
        # c and d are NOT siblings: < must not relate them.
        related = Exists(
            x,
            Exists(
                y,
                And(And(Label(x, "c"), Label(y, "d")), Or(Less(x, y), Less(y, x))),
            ),
        )
        assert not tree_satisfies(tree, related)

    def test_descendant_atom(self):
        tree = Tree.parse("a(b(c), d)")
        below_b = And(Label(y, "c"), Exists(x, And(Label(x, "b"), Descendant(x, y))))
        assert tree_query(tree, below_b, y) == frozenset({(0, 0)})

    def test_descendant_matches_mso_definition(self):
        """The Descendant atom agrees with its set-quantifier definition."""
        tree = Tree.parse("a(b(c, d(e)), f)")
        from repro.logic.semantics import Structure, evaluate

        structure = Structure.from_tree(tree)
        for u in tree.nodes():
            for v in tree.nodes():
                atom = evaluate(structure, Descendant(x, y), {x: u, y: v})
                defined = evaluate(structure, ancestor(x, y), {x: u, y: v})
                assert atom == defined, (u, v)

    def test_derived_predicates(self):
        tree = Tree.parse("a(b, c(d))")
        assert tree_query(tree, root(x), x) == frozenset({()})
        assert tree_query(tree, leaf(x), x) == frozenset({(0,), (1, 0)})
        assert tree_query(tree, first_sibling(x) & ~root(x), x) == frozenset(
            {(0,), (1, 0)}
        )
        assert tree_query(tree, last_sibling(x) & ~root(x), x) == frozenset(
            {(1,), (1, 0)}
        )

    def test_next_sibling(self):
        tree = Tree.parse("a(b, c, d)")
        phi = Exists(y, And(next_sibling(y, x), Label(y, "b")))
        assert tree_query(tree, phi, x) == frozenset({(1,)})

    def test_unbound_variable_raises(self):
        with pytest.raises(KeyError):
            tree_satisfies(Tree.parse("a"), Label(x, "a"))
