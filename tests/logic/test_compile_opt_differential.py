"""Seeded differential suite: optimized vs naive compilation pipelines.

Every entry point of the compilation optimizer (per-connective
minimization, hash-consing, content-addressed caching) is proved
language- and query-equivalent to the ``engine="naive"`` reference
construction: string sentences/queries via Hopcroft–Karp DFA equivalence
(:meth:`repro.strings.dfa.DFA.equivalent`), tree queries via DBTA
symmetric-difference emptiness (:func:`repro.perf.minimize.dbta_equivalent`)
plus marked-query evaluation over seeded trees.
"""

import random

import pytest

from repro.logic.compile_strings import (
    compile_query,
    compile_sentence,
    evaluate_marked_query,
)
from repro.logic.compile_trees import (
    compile_tree_query,
    compile_tree_sentence,
    mark,
)
from repro.logic.syntax import (
    And,
    Descendant,
    Edge,
    Equal,
    Exists,
    Forall,
    Implies,
    Label,
    Less,
    Member,
    Not,
    Or,
    SetVar,
    Var,
)
from repro.perf.compile import compile_cache_clear
from repro.perf.minimize import dbta_equivalent
from repro.trees.tree import Tree
from repro.unranked.dbta import evaluate_marked_query as evaluate_marked_tree

ALPHABET = ["a", "b"]
X, Y, Z = Var("x"), Var("y"), Var("z")
S = SetVar("S")


def random_string_formula(rng: random.Random, depth: int, scope: tuple):
    """A random formula over the string vocabulary with variables in scope."""
    first_order = [v for v in scope if isinstance(v, Var)]
    atoms = []
    if first_order:
        atoms.append(lambda: Label(rng.choice(first_order), rng.choice(ALPHABET)))
    if len(first_order) >= 2:
        atoms.append(lambda: Less(*rng.sample(first_order, 2)))
        atoms.append(lambda: Equal(*rng.sample(first_order, 2)))
    set_vars = [v for v in scope if isinstance(v, SetVar)]
    if first_order and set_vars:
        atoms.append(
            lambda: Member(rng.choice(first_order), rng.choice(set_vars))
        )
    if depth == 0 or not atoms or rng.random() < 0.25:
        if not atoms:
            fresh = Var(f"v{len(scope)}")
            return Exists(
                fresh, random_string_formula(rng, depth, scope + (fresh,))
            )
        return rng.choice(atoms)()
    choice = rng.random()
    if choice < 0.2:
        return Not(random_string_formula(rng, depth - 1, scope))
    if choice < 0.4:
        return And(
            random_string_formula(rng, depth - 1, scope),
            random_string_formula(rng, depth - 1, scope),
        )
    if choice < 0.6:
        return Or(
            random_string_formula(rng, depth - 1, scope),
            random_string_formula(rng, depth - 1, scope),
        )
    if choice < 0.75:
        return Implies(
            random_string_formula(rng, depth - 1, scope),
            random_string_formula(rng, depth - 1, scope),
        )
    fresh = Var(f"v{len(scope)}")
    wrapper = Exists if rng.random() < 0.7 else Forall
    return wrapper(fresh, random_string_formula(rng, depth - 1, scope + (fresh,)))


@pytest.mark.parametrize("seed", range(40))
def test_string_sentences_equivalent(seed):
    rng = random.Random(seed)
    sentence = random_string_formula(rng, rng.randint(1, 3), ())
    compile_cache_clear()
    optimized = compile_sentence(sentence, ALPHABET)
    naive = compile_sentence(sentence, ALPHABET, engine="naive")
    assert optimized.equivalent(naive), sentence


@pytest.mark.parametrize("seed", range(25))
def test_string_queries_equivalent(seed):
    rng = random.Random(100 + seed)
    formula = random_string_formula(rng, rng.randint(1, 3), (X,))
    compile_cache_clear()
    optimized = compile_query(formula, X, ALPHABET)
    naive = compile_query(formula, X, ALPHABET, engine="naive")
    assert optimized.equivalent(naive), formula
    for length in range(4):
        for trial in range(3):
            word = [rng.choice(ALPHABET) for _ in range(length)]
            assert evaluate_marked_query(optimized, word) == (
                evaluate_marked_query(naive, word)
            ), (formula, word)


TREE_QUERY_FORMULAS = [
    Label(X, "a"),
    And(Label(X, "a"), Exists(Y, And(Edge(X, Y), Label(Y, "b")))),
    Not(Exists(Y, Descendant(Y, X))),
    Or(
        Exists(Y, And(Edge(Y, X), Label(Y, "b"))),
        Not(Label(X, "a")),
    ),
    Implies(Label(X, "b"), Exists(Y, Descendant(X, Y))),
    Forall(Y, Implies(Edge(X, Y), Label(Y, "a"))),
    Exists(Y, And(Less(Y, X), Label(Y, "a"))),
]

TREE_TEXTS = [
    "a",
    "b",
    "a(b)",
    "b(a, a)",
    "a(a(b), b)",
    "b(a(a, b), a)",
    "a(b(b), a(a), b)",
]


@pytest.mark.parametrize("index", range(len(TREE_QUERY_FORMULAS)))
def test_tree_queries_equivalent(index):
    formula = TREE_QUERY_FORMULAS[index]
    compile_cache_clear()
    optimized = compile_tree_query(formula, X, ALPHABET)
    naive = compile_tree_query(formula, X, ALPHABET, engine="naive")
    assert dbta_equivalent(optimized, naive), formula
    for text in TREE_TEXTS:
        tree = Tree.parse(text)
        assert evaluate_marked_tree(optimized, tree, mark) == (
            evaluate_marked_tree(naive, tree, mark)
        ), (formula, text)


TREE_SENTENCES = [
    Exists(X, Label(X, "a")),
    Forall(X, Implies(Label(X, "a"), Exists(Y, Edge(X, Y)))),
    Not(Exists(X, Exists(Y, And(Edge(X, Y), Label(Y, "b"))))),
    Exists(X, Forall(Y, Implies(Descendant(X, Y), Label(Y, "a")))),
]


@pytest.mark.parametrize("index", range(len(TREE_SENTENCES)))
def test_tree_sentences_equivalent(index):
    sentence = TREE_SENTENCES[index]
    compile_cache_clear()
    optimized = compile_tree_sentence(sentence, ALPHABET)
    naive = compile_tree_sentence(sentence, ALPHABET, engine="naive")
    for text in TREE_TEXTS:
        tree = Tree.parse(text)
        assert optimized.accepts(tree) == naive.accepts(tree), (sentence, text)


def test_cached_artifact_still_query_correct():
    """A warm cache hit returns the same (correct) automaton object."""
    formula = TREE_QUERY_FORMULAS[1]
    compile_cache_clear()
    first = compile_tree_query(formula, X, ALPHABET)
    second = compile_tree_query(formula, X, ALPHABET)
    assert second is first
    naive = compile_tree_query(formula, X, ALPHABET, engine="naive")
    for text in TREE_TEXTS:
        tree = Tree.parse(text)
        assert evaluate_marked_tree(second, tree, mark) == (
            evaluate_marked_tree(naive, tree, mark)
        )
