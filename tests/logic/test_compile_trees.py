"""Doner–Thatcher–Wright for unranked trees (Theorems 2.8 / 5.4)."""

import pytest

from repro.logic.compile_trees import (
    compile_tree_query,
    compile_tree_sentence,
    mark,
)
from repro.logic.semantics import tree_query, tree_satisfies
from repro.logic.syntax import (
    And,
    Descendant,
    Edge,
    Exists,
    ExistsSet,
    Forall,
    Implies,
    Label,
    Less,
    Member,
    Not,
    SetVar,
    Var,
    leaf,
    root,
)
from repro.trees.generators import enumerate_trees
from repro.unranked.dbta import brute_force_marked_query, evaluate_marked_query

x, y = Var("x"), Var("y")
X = SetVar("X")

TREES = enumerate_trees(["a", "b"], 4)

SENTENCES = [
    ("contains a", Exists(x, Label(x, "a"))),
    ("root a, leaves b", Forall(x, And(Implies(root(x), Label(x, "a")), Implies(leaf(x), Label(x, "b"))))),
    ("some a-parent of b", Exists(x, Exists(y, And(Edge(x, y), And(Label(x, "a"), Label(y, "b")))))),
    ("sibling a < b", Exists(x, Exists(y, And(Less(x, y), And(Label(x, "a"), Label(y, "b")))))),
]


class TestSentences:
    @pytest.mark.parametrize("name,phi", SENTENCES, ids=[n for n, _ in SENTENCES])
    def test_agrees_with_naive_semantics(self, name, phi):
        nbta = compile_tree_sentence(phi, ["a", "b"])
        for tree in TREES:
            assert nbta.accepts(tree) == tree_satisfies(tree, phi), str(tree)

    def test_genuinely_second_order(self):
        """Every node is in X or has a child in X — with X an antichain-ish
        set quantifier exercise: some set containing the root but no leaf."""
        phi = ExistsSet(
            X,
            And(
                Exists(x, And(root(x), Member(x, X))),
                Forall(x, Implies(leaf(x), Not(Member(x, X)))),
            ),
        )
        nbta = compile_tree_sentence(phi, ["a", "b"])
        for tree in TREES:
            assert nbta.accepts(tree) == tree_satisfies(tree, phi), str(tree)


QUERIES = [
    ("label a", Label(x, "a")),
    ("has a-child", Exists(y, And(Edge(x, y), Label(y, "a")))),
    ("first 1-sibling analogue", And(Label(x, "a"), Not(Exists(y, And(Less(y, x), Label(y, "a")))))),
    ("a-descendants of root", And(Label(x, "a"), Exists(y, And(root(y), Descendant(y, x))))),
]


class TestQueries:
    @pytest.mark.parametrize("name,phi", QUERIES, ids=[n for n, _ in QUERIES])
    def test_two_pass_agrees_with_semantics(self, name, phi):
        automaton = compile_tree_query(phi, x, ["a", "b"])
        for tree in TREES:
            reference = tree_query(tree, phi, x)
            two_pass = evaluate_marked_query(automaton, tree, mark)
            assert two_pass == reference, str(tree)

    def test_two_pass_agrees_with_brute_force(self):
        automaton = compile_tree_query(QUERIES[1][1], x, ["a", "b"])
        for tree in TREES[:40]:
            assert evaluate_marked_query(automaton, tree, mark) == (
                brute_force_marked_query(automaton, tree, mark)
            ), str(tree)

    def test_marked_automaton_is_deterministic_and_total(self):
        automaton = compile_tree_query(Label(x, "a"), x, ["a", "b"])
        for tree in TREES[:30]:
            for target in tree.nodes():
                marked = tree.relabel(
                    lambda p, l: (l, 1 if p == target else 0)
                )
                automaton.state_of(marked)  # must never raise
