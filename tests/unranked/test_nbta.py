"""NBTA^u (Definition 5.1) and the PTIME emptiness of Lemma 5.2."""

import pytest

from repro.strings.regex import parse_regex, to_nfa
from repro.trees.generators import enumerate_trees
from repro.trees.tree import Tree
from repro.unranked.nbta import UnrankedTreeAutomaton


def has_a_automaton() -> UnrankedTreeAutomaton:
    """Simple guess-free NBTA: state y iff subtree contains an 'a'."""
    states = {"n", "y"}
    n_children = parse_regex("n*")
    y_children = parse_regex("n* y (n|y)*  | (n|y)* y n*")
    horizontal = {
        ("n", "b"): to_nfa(n_children, frozenset(states)),
        ("y", "a"): to_nfa(parse_regex("(n|y)*"), frozenset(states)),
        ("y", "b"): to_nfa(y_children, frozenset(states)),
    }
    return UnrankedTreeAutomaton(
        frozenset(states), frozenset({"a", "b"}), frozenset({"y"}), horizontal
    )


class TestSemantics:
    def test_has_a(self):
        nbta = has_a_automaton()
        for tree in enumerate_trees(["a", "b"], 4):
            expected = "a" in tree.labels()
            assert nbta.accepts(tree) == expected, str(tree)

    def test_run_is_per_node(self):
        nbta = has_a_automaton()
        run = nbta.run(Tree.parse("b(a, b)"))
        assert run[(0,)] == frozenset({"y"})
        assert run[(1,)] == frozenset({"n"})
        assert run[()] == frozenset({"y"})


class TestLemma52:
    def test_nonempty_with_witness(self):
        nbta = has_a_automaton()
        assert not nbta.is_empty()
        witness = nbta.witness()
        assert witness is not None and nbta.accepts(witness)

    def test_empty_language(self):
        states = frozenset({"q"})
        # q requires a q-child forever: no finite tree works.
        horizontal = {
            ("q", "a"): to_nfa(parse_regex("q q*"), states),
        }
        nbta = UnrankedTreeAutomaton(states, frozenset({"a"}), states, horizontal)
        assert nbta.is_empty()
        assert nbta.witness() is None

    def test_reachability_fixpoint(self):
        nbta = has_a_automaton()
        assert nbta.reachable_states() == frozenset({"n", "y"})


class TestBooleanOperations:
    def test_intersection_union(self):
        has_a = has_a_automaton()
        # all-b automaton
        states = frozenset({"n"})
        all_b = UnrankedTreeAutomaton(
            states,
            frozenset({"a", "b"}),
            states,
            {("n", "b"): to_nfa(parse_regex("n*"), states)},
        )
        both = has_a.intersection(all_b)
        either = has_a.union(all_b)
        for tree in enumerate_trees(["a", "b"], 3):
            expected_a = "a" in tree.labels()
            expected_b = tree.labels() == frozenset({"b"})
            assert both.accepts(tree) == (expected_a and expected_b)
            assert either.accepts(tree) == (expected_a or expected_b)
        assert both.is_empty()

    def test_trimmed_preserves_language(self):
        nbta = has_a_automaton()
        trimmed = nbta.trimmed()
        for tree in enumerate_trees(["a", "b"], 3):
            assert trimmed.accepts(tree) == nbta.accepts(tree)

    def test_relabel_projection(self):
        nbta = has_a_automaton()
        # Map both labels to 'c': accepts any tree over 'c' that is the
        # image of an accepted tree — every shape has an accepted preimage
        # (relabel some node to a), so all 'c'-trees are accepted.
        projected = nbta.relabel({"a": "c", "b": "c"})
        for tree in enumerate_trees(["c"], 3):
            assert projected.accepts(tree), str(tree)
