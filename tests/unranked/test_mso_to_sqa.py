"""Theorem 5.17: MSO unary queries → SQA^u (Figure 6 construction)."""

from functools import lru_cache

import pytest

from repro.logic.compile_trees import compile_tree_query
from repro.logic.semantics import tree_query
from repro.logic.syntax import And, Edge, Exists, Label, Less, Not, Var
from repro.trees.tree import Tree
from repro.unranked.behavior import evaluate_query_via_behavior
from repro.unranked.mso_to_sqa import build_query_sqa, figure6_evaluate

x, y = Var("x"), Var("y")

QUERIES = [
    ("label a", Label(x, "a")),
    ("no earlier a-sibling", And(Label(x, "a"), Not(Exists(y, And(Less(y, x), Label(y, "a")))))),
]

# Inner nodes with ≥ 2 children (the Figure 6 setting; chains go through
# the Lemma 3.10 string treatment in the paper).
WIDE_TREES = [
    Tree.parse("a"),
    Tree.parse("b"),
    Tree.parse("a(b, a)"),
    Tree.parse("b(a, a, b)"),
    Tree.parse("a(b(a, a), b)"),
    Tree.parse("b(a(b, b), a(a, b, a))"),
    Tree.parse("a(a(a, a), a(a, a), b)"),
]


@lru_cache(maxsize=None)
def compiled(index: int):
    name, phi = QUERIES[index]
    return (
        compile_tree_query(phi, x, ["a", "b"]),
        build_query_sqa(phi, x, ["a", "b"]),
        phi,
    )


class TestFigure6Algorithm:
    @pytest.mark.parametrize("index", range(len(QUERIES)))
    def test_matches_naive_semantics(self, index):
        d, _sqa, phi = compiled(index)
        for tree in WIDE_TREES:
            assert figure6_evaluate(d, tree) == tree_query(tree, phi, x), str(tree)

    def test_handles_any_arity(self):
        """The algorithm itself (unlike the automaton) covers chains."""
        d, _sqa, phi = compiled(0)
        chain = Tree.parse("a(b(a))")
        assert figure6_evaluate(d, chain) == tree_query(chain, phi, x)


class TestTheorem517Automaton:
    @pytest.mark.parametrize("index", range(len(QUERIES)))
    def test_sqa_computes_the_query(self, index):
        _d, sqa, phi = compiled(index)
        for tree in WIDE_TREES:
            assert sqa.evaluate(tree) == tree_query(tree, phi, x), (
                QUERIES[index][0], str(tree)
            )

    @pytest.mark.parametrize("index", range(len(QUERIES)))
    def test_behavior_evaluation_agrees(self, index):
        """The construction is an honest SQA^u: Lemma 5.16 applies."""
        _d, sqa, _phi = compiled(index)
        for tree in WIDE_TREES:
            assert evaluate_query_via_behavior(sqa, tree) == sqa.evaluate(tree)

    def test_is_strong(self):
        """At most one stay transition per node (Definition 5.12)."""
        _d, sqa, _phi = compiled(0)
        assert sqa.automaton.stay_limit == 1
        assert sqa.automaton.stay_gsqa is not None

    def test_run_returns_to_root(self):
        _d, sqa, _phi = compiled(0)
        trace = sqa.automaton.run(Tree.parse("a(b, a)"))
        assert list(trace[0]) == [()]
        assert list(trace[-1]) == [()]
        assert trace[-1][()] in sqa.automaton.accepting
