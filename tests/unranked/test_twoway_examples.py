"""Unranked two-way automata: Example 5.9 (QA^u) and Example 5.14 (SQA^u)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.strings.dfa import AutomatonError, DFA
from repro.trees.generators import (
    evaluate_circuit,
    random_unranked_circuit,
)
from repro.trees.tree import Tree
from repro.unranked.examples import (
    circuit_query_automaton,
    circuit_reference_query,
    first_one_sqa,
)
from repro.unranked.separation import first_one_reference, flat_family_tree
from repro.unranked.twoway import (
    StayLimitError,
    UnrankedQueryAutomaton,
    up_classifier_from_languages,
)


class TestExample59:
    @given(st.integers(min_value=0, max_value=3), st.integers(min_value=0, max_value=200))
    @settings(max_examples=60, deadline=None)
    def test_selects_true_gates_and_leaves(self, depth, seed):
        qa = circuit_query_automaton()
        tree = random_unranked_circuit(depth, max_arity=4, seed_or_rng=seed)
        assert qa.evaluate(tree) == circuit_reference_query(tree)

    def test_wide_gate(self):
        qa = circuit_query_automaton()
        tree = Tree.parse("OR(0, 0, 0, 0, 1)")
        assert qa.evaluate(tree) == frozenset({(), (4,)})
        tree = Tree.parse("AND(1, 1, 1, 0)")
        assert qa.evaluate(tree) == frozenset({(0,), (1,), (2,)})

    def test_language_is_all_circuits(self):
        """F = Q: the automaton accepts every circuit (it computes a query,
        not a language — the §5.4 discrepancy)."""
        qa = circuit_query_automaton()
        for tree in [Tree.parse("AND(0, 1)"), Tree.parse("OR(0, 0)"), Tree.parse("1")]:
            assert qa.accepts(tree)


class TestExample514:
    def test_flat_family(self):
        sqa = first_one_sqa()
        for width in range(1, 8):
            for zeros in range(width + 1):
                tree = flat_family_tree(zeros, width)
                assert sqa.evaluate(tree) == first_one_reference(tree), str(tree)

    def test_one_stay_per_node(self):
        sqa = first_one_sqa()
        assert sqa.automaton.stay_limit == 1
        # The run on a flat tree makes exactly one stay at the root.
        tree = flat_family_tree(1, 3)
        trace = sqa.automaton.run(tree)
        # Count configurations where children states change without the
        # cut moving: the stay transition.
        stays = 0
        for before, after in zip(trace, trace[1:]):
            if set(before) != set(after):
                continue  # the cut moved: a down or up transition
            changed = sum(1 for path in before if before[path] != after[path])
            if changed >= 2:
                stays += 1  # only a stay rewrites several nodes at once
        assert stays == 1

    def test_uniform_depth_two(self):
        sqa = first_one_sqa()
        tree = Tree.parse("0(0(1, 1), 1(0, 1))")
        assert sqa.evaluate(tree) == first_one_reference(tree)

    def test_selection_is_per_parent(self):
        sqa = first_one_sqa()
        tree = Tree.parse("0(1(1, 1), 0(0, 1))")
        # Each parent's first 1-leaf child: (0,0) and (1,1).
        assert sqa.evaluate(tree) == frozenset({(0, 0), (1, 1)})


class TestModelValidation:
    def test_disjoint_up_languages_enforced(self):
        pairs = frozenset({("q", "a")})
        everything = DFA.build(
            {0}, pairs, {(0, ("q", "a")): 0}, 0, {0}
        )
        with pytest.raises(AutomatonError):
            up_classifier_from_languages(
                {"q1": everything, "q2": everything}, None, pairs
            )

    def test_stay_limit_enforced(self):
        """Exceeding the declared stay budget raises (Definition 5.12)."""
        sqa = first_one_sqa()
        # Force a 0-limit version of the same automaton: its stay would
        # violate immediately.
        from dataclasses import replace

        strict = replace(sqa.automaton, stay_limit=0)
        with pytest.raises(StayLimitError):
            strict.run(flat_family_tree(0, 2))
