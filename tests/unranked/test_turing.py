"""Section 5.3's rationale: unbounded stays exceed MSO (and need bounding)."""

import itertools

import pytest

from repro.trees.tree import Tree
from repro.unranked.turing import anbn_acceptor, anbn_reference
from repro.unranked.twoway import StayLimitError


def leaf_word_tree(word: str) -> Tree:
    return Tree("r", [Tree(symbol) for symbol in word])


class TestBeyondMSO:
    def test_exhaustive_small_words(self):
        acceptor = anbn_acceptor()
        for n in range(1, 7):
            for letters in itertools.product("ab", repeat=n):
                word = "".join(letters)
                assert acceptor.accepts(leaf_word_tree(word)) == anbn_reference(
                    word
                ), word

    def test_large_balanced_word(self):
        acceptor = anbn_acceptor()
        assert acceptor.accepts(leaf_word_tree("a" * 12 + "b" * 12))
        assert not acceptor.accepts(leaf_word_tree("a" * 12 + "b" * 11))

    def test_interleavings_rejected(self):
        acceptor = anbn_acceptor()
        for word in ["abab", "ba", "aabab", "abba"]:
            assert not acceptor.accepts(leaf_word_tree(word)), word

    def test_stay_count_is_linear(self):
        """aⁿbⁿ needs n stay transitions — no constant bound suffices."""
        acceptor = anbn_acceptor()
        for n in (2, 4, 6):
            trace = acceptor.run(leaf_word_tree("a" * n + "b" * n))
            stays = sum(
                1
                for before, after in zip(trace, trace[1:])
                if set(before) == set(after)
                and sum(1 for p in before if before[p] != after[p]) >= 2
            )
            assert stays == n

    def test_strong_restriction_fires(self):
        """Imposing Definition 5.12's bound on this automaton breaks it —
        the formal reason SQA^u stay within MSO."""
        from dataclasses import replace

        strong = replace(anbn_acceptor(), stay_limit=1)
        with pytest.raises(StayLimitError):
            strong.accepts(leaf_word_tree("aabb"))

    def test_not_recognizable_hence_beyond_sqa(self):
        """Sanity for the separation's premise: the accepted leaf words are
        non-regular (pumping on a^k b^k vs a^k b^j)."""
        acceptor = anbn_acceptor()
        assert acceptor.accepts(leaf_word_tree("aaabbb"))
        assert not acceptor.accepts(leaf_word_tree("aaabb"))
        assert not acceptor.accepts(leaf_word_tree("aabbb"))


class TestRemark518:
    """Remark 5.18: the runner supports any constant stay budget.

    An automaton declared with ``stay_limit = k`` runs exactly the inputs
    whose nodes need at most k stays and faults beyond — here the
    crossing-off acceptor under a budget of 2.
    """

    def test_two_stay_budget(self):
        from dataclasses import replace

        acceptor = replace(anbn_acceptor(), stay_limit=2)
        # a¹b¹ and a²b² need 1 and 2 stays respectively: fine.
        assert acceptor.accepts(leaf_word_tree("ab"))
        assert acceptor.accepts(leaf_word_tree("aabb"))
        # a³b³ would need a third stay at the root.
        with pytest.raises(StayLimitError):
            acceptor.accepts(leaf_word_tree("aaabbb"))
