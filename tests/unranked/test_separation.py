"""Proposition 5.10, executable: QA^u cannot compute the first-1 query.

We pit a battery of natural QA^u attempts against the query and confirm
the pigeonhole failure the paper proves, while the Example 5.14 SQA^u
(one stay transition) answers the whole family correctly.
"""

import pytest

from repro.strings.dfa import DFA
from repro.strings.simple_regex import Branch, SimpleRegex, constant_sequence
from repro.trees.tree import Tree
from repro.unranked.examples import first_one_sqa
from repro.unranked.separation import (
    first_one_reference,
    flat_family_tree,
    impossibility_witness,
    pigeonhole_pair,
    root_state_sequence,
)
from repro.unranked.twoway import (
    TwoWayUnrankedAutomaton,
    UnrankedQueryAutomaton,
    up_classifier_from_languages,
)


def _letterwise(pairs, allowed) -> DFA:
    transitions = {}
    for pair in pairs:
        if pair in allowed:
            transitions[(0, pair)] = 1
            transitions[(1, pair)] = 1
    return DFA.build({0, 1}, pairs, transitions, 0, {1})


def naive_attempt_select_all_ones() -> UnrankedQueryAutomaton:
    """Attempt 1: select every 1-leaf (over-selects)."""
    labels = ("0", "1")
    states = frozenset({"s", "u"})
    pairs = frozenset(("u", label) for label in labels)
    classifier = up_classifier_from_languages(
        {"u": _letterwise(pairs, pairs)}, None, pairs
    )
    automaton = TwoWayUnrankedAutomaton(
        states=states,
        alphabet=frozenset(labels),
        initial="s",
        accepting=states,
        up_pairs=pairs,
        down_pairs=frozenset(("s", label) for label in labels),
        delta_leaf={("s", label): "u" for label in labels},
        delta_root={},
        up_classifier=classifier,
        down={("s", label): constant_sequence("s") for label in labels},
    )
    return UnrankedQueryAutomaton(automaton, frozenset({("u", "1")}))


def positional_attempt(max_tracked: int = 3) -> UnrankedQueryAutomaton:
    """Attempt 2: mark the first few positions with distinct down states.

    The slender down language hands position-dependent states to the first
    ``max_tracked`` children — a finite-memory attempt at "first 1" that
    must fail beyond its window (the pigeonhole argument in miniature).
    """
    labels = ("0", "1")
    tracked = [f"p{i}" for i in range(max_tracked)]
    states = frozenset({"s", "rest", "u", *tracked})
    pairs = frozenset(("u", label) for label in labels)
    classifier = up_classifier_from_languages(
        {"u": _letterwise(pairs, pairs)}, None, pairs
    )
    # Down: p0 p1 ... p_{k-1} rest*
    down_language = SimpleRegex(
        [Branch(tuple(tracked), ("rest",), ())]
        + [Branch(tuple(tracked[: n]), (), ()) for n in range(1, max_tracked)]
    )
    # All leaf states (positional or not) turn around into the up state u;
    # λ below reads the positional state at the instant before the turn.
    delta_leaf = {("rest", label): "u" for label in labels}
    for name in tracked:
        for label in labels:
            delta_leaf[(name, label)] = "u"
    automaton = TwoWayUnrankedAutomaton(
        states=states,
        alphabet=frozenset(labels),
        initial="s",
        accepting=states,
        up_pairs=pairs,
        down_pairs=frozenset(
            (q, label) for q in ["s", "rest", *tracked] for label in labels
        ),
        delta_leaf=delta_leaf,
        delta_root={},
        up_classifier=classifier,
        down={("s", label): down_language for label in labels},
    )
    # Select the first tracked position when labeled 1 — correct only
    # when the first 1 sits within the window and all before are 0s...
    # (it is not even that: it selects p0 iff labeled 1).
    return UnrankedQueryAutomaton(automaton, frozenset({("p0", "1")}))


class TestImpossibility:
    @pytest.mark.parametrize(
        "attempt",
        [naive_attempt_select_all_ones, positional_attempt],
        ids=["select-all-ones", "positional-window"],
    )
    def test_every_attempt_fails_on_the_family(self, attempt):
        qa = attempt()
        witness = impossibility_witness(qa, width=8)
        assert witness is not None
        tree, produced, expected = witness
        assert produced != expected
        assert produced == qa.evaluate(tree)
        assert expected == first_one_reference(tree)

    def test_pigeonhole_pair_exists(self):
        """The combinatorial heart: some t_j, t_j' share root sequences."""
        qa = naive_attempt_select_all_ones()
        pair = pigeonhole_pair(qa, width=4)
        assert pair is not None
        j, j2 = pair
        assert j < j2
        width = 4
        assert root_state_sequence(
            qa.automaton, flat_family_tree(j, width)
        ) == root_state_sequence(qa.automaton, flat_family_tree(j2, width))

    def test_sqa_succeeds_where_qa_fails(self):
        """The separation: Example 5.14's SQA^u answers the family."""
        sqa = first_one_sqa()
        assert impossibility_witness.__doc__  # documented procedure
        for width in range(1, 8):
            for zeros in range(width + 1):
                tree = flat_family_tree(zeros, width)
                assert sqa.evaluate(tree) == first_one_reference(tree)

    def test_reference_query(self):
        tree = Tree.parse("r(0, 1, 1, 0(1), 1)")
        # first 1-leaf among r's children: position 1 (later 1s have an
        # earlier 1-sibling); 0(1)'s own first 1-leaf child: (3, 0).
        assert first_one_reference(tree) == frozenset({(1,), (3, 0)})
