"""BMW determinization and the two-pass marked-query evaluation."""

from hypothesis import given, settings

from repro.trees.generators import enumerate_trees
from repro.trees.tree import Tree
from repro.unranked.dbta import (
    brute_force_marked_query,
    determinize,
    evaluate_marked_query,
)

from ..conftest import trees
from .test_nbta import has_a_automaton


class TestDeterminization:
    def test_language_preserved(self):
        nbta = has_a_automaton()
        det = determinize(nbta)
        for tree in enumerate_trees(["a", "b"], 4):
            assert det.accepts(tree) == nbta.accepts(tree), str(tree)

    def test_every_tree_gets_exactly_one_state(self):
        det = determinize(has_a_automaton())
        for tree in enumerate_trees(["a", "b"], 3):
            state = det.state_of(tree)  # would raise if not total
            assert state in det.states

    def test_complement(self):
        det = determinize(has_a_automaton())
        complement = det.complement()
        for tree in enumerate_trees(["a", "b"], 3):
            assert complement.accepts(tree) != det.accepts(tree)

    def test_roundtrip_to_nbta(self):
        det = determinize(has_a_automaton())
        back = det.to_nbta()
        for tree in enumerate_trees(["a", "b"], 3):
            assert back.accepts(tree) == det.accepts(tree)

    @given(trees(max_size=8, max_arity=4))
    @settings(max_examples=50, deadline=None)
    def test_determinized_subset_semantics(self, tree):
        """The subset state is exactly the NBTA's possible-states set."""
        nbta = has_a_automaton()
        det = determinize(nbta)
        assert det.state_of(tree) == nbta.states_of(tree)


class TestMarkedQueryEvaluation:
    def test_two_pass_equals_brute_force(self):
        from repro.logic.compile_trees import compile_tree_query, mark
        from repro.logic.syntax import And, Exists, Label, Less, Not, Var

        x, y = Var("x"), Var("y")
        phi = And(Label(x, "a"), Not(Exists(y, And(Less(y, x), Label(y, "a")))))
        automaton = compile_tree_query(phi, x, ["a", "b"])
        for tree in enumerate_trees(["a", "b"], 4):
            two_pass = evaluate_marked_query(automaton, tree, mark)
            brute = brute_force_marked_query(automaton, tree, mark)
            assert two_pass == brute, str(tree)
