"""Differential suite: ``engine="numpy"`` NBTA paths ≡ the bitset oracle.

Random unranked tree automata (regex horizontal languages over random
state sets) exercise run/acceptance, the Lemma 5.2 emptiness fixpoint,
and witness extraction through the packbits successor-mask kernel; every
result — including witness trees and the ``antichain.*`` counters the
searches emit — must match the pure-Python bitset path exactly.
"""

import random

import pytest

from repro import obs
from repro.perf import npkernel
from repro.strings.regex import parse_regex, to_nfa
from repro.trees.generators import enumerate_trees
from repro.unranked.nbta import AutomatonError, UnrankedTreeAutomaton

needs_numpy = pytest.mark.skipif(
    not npkernel.available(), reason="numpy not installed"
)

ALPHABET = ("a", "b")


def _random_nbta(rng, max_states=3):
    names = [f"s{i}" for i in range(rng.randint(1, max_states))]
    states = frozenset(names)

    def piece():
        first, second = rng.choice(names), rng.choice(names)
        return rng.choice(
            [first, f"{first}*", f"({first}|{second})", f"({first}|{second})*"]
        )

    horizontal = {}
    for state in names:
        for symbol in ALPHABET:
            if rng.random() < 0.7:
                expr = " ".join(piece() for _ in range(rng.randint(1, 3)))
                if rng.random() < 0.3:
                    expr += " | " + piece()
                horizontal[(state, symbol)] = to_nfa(parse_regex(expr), states)
    accepting = frozenset(
        state for state in names if rng.random() < 0.5
    ) or frozenset({names[0]})
    return UnrankedTreeAutomaton(
        states, frozenset(ALPHABET), accepting, horizontal
    )


@needs_numpy
class TestRunDifferential:
    def test_random_automata_runs_agree(self):
        """≥200 (NBTA, tree) cases: identical per-node state sets."""
        rng = random.Random(0xE1)
        trees = list(enumerate_trees(list(ALPHABET), 3))
        cases = 0
        while cases < 210:
            nbta = _random_nbta(rng)
            for tree in rng.sample(trees, 10):
                assert nbta.run(tree, engine="numpy") == nbta.run(tree), str(
                    tree
                )
                assert nbta.accepts(tree, engine="numpy") == nbta.accepts(
                    tree
                )
                cases += 1


@needs_numpy
class TestEmptinessDifferential:
    def test_random_automata_emptiness_and_witness_agree(self):
        """Emptiness verdicts match; witnesses are byte-identical trees
        (both sides run the same antichain-pruned shortest-word BFS)."""
        rng = random.Random(0xE2)
        empties = 0
        for case in range(220):
            nbta = _random_nbta(rng)
            expected_empty = nbta.is_empty()
            assert nbta.is_empty(engine="numpy") == expected_empty, case
            assert nbta.reachable_states(
                engine="numpy"
            ) == nbta.reachable_states()
            witness = nbta.witness(engine="numpy")
            assert witness == nbta.witness(), case
            if expected_empty:
                empties += 1
                assert witness is None
            else:
                assert witness is not None and nbta.accepts(witness)
        # The generator must exercise both outcomes for this to mean much.
        assert 5 <= empties <= 215

    def test_antichain_counters_match(self):
        rng = random.Random(0xE3)
        nbta = _random_nbta(rng, max_states=3)

        def counters(engine):
            with obs.collecting() as stats:
                nbta.witness(engine=engine)
            report = stats.report()["counters"]
            return {
                key: value
                for key, value in report.items()
                if key.startswith("antichain.")
            }

        expected = counters(None)
        assert counters("numpy") == expected
        assert "antichain.searches" in expected

    def test_unknown_engine_rejected(self):
        nbta = _random_nbta(random.Random(0xE4))
        with pytest.raises(AutomatonError, match="unknown NBTA engine"):
            nbta.is_empty(engine="quantum")


class TestFallbackWithoutNumpy:
    def test_emptiness_falls_back_and_counts(self, monkeypatch):
        monkeypatch.setattr(npkernel, "np", None)
        nbta = _random_nbta(random.Random(0xE5))
        with obs.collecting() as stats:
            assert nbta.is_empty(engine="numpy") == nbta.is_empty()
        assert stats.report()["counters"]["npkernel.fallbacks"] >= 1
