"""Lemma 5.16: behavior functions for unranked automata (with stays)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.trees.generators import random_unranked_circuit
from repro.unranked.behavior import (
    assumed_sets,
    behavior_functions,
    evaluate_query_via_behavior,
)
from repro.unranked.examples import circuit_query_automaton, first_one_sqa
from repro.unranked.separation import flat_family_tree
from repro.trees.tree import Tree


class TestWithoutStays:
    @given(st.integers(min_value=0, max_value=3), st.integers(min_value=0, max_value=150))
    @settings(max_examples=50, deadline=None)
    def test_circuit_agreement(self, depth, seed):
        qa = circuit_query_automaton()
        tree = random_unranked_circuit(depth, max_arity=4, seed_or_rng=seed)
        assert evaluate_query_via_behavior(qa, tree) == qa.evaluate(tree)

    def test_assumed_matches_trace(self):
        qa = circuit_query_automaton()
        tree = Tree.parse("AND(OR(1, 0, 1), 1, 0)")
        assumed, halting = assumed_sets(qa.automaton, tree)
        trace = qa.automaton.run(tree)
        for path in tree.nodes():
            observed = {conf[path] for conf in trace if path in conf}
            assert assumed[path] == observed, path
        assert trace[-1][()] == halting


class TestWithStays:
    def test_flat_family_agreement(self):
        sqa = first_one_sqa()
        for width in range(1, 8):
            for zeros in range(width + 1):
                tree = flat_family_tree(zeros, width)
                assert evaluate_query_via_behavior(sqa, tree) == sqa.evaluate(
                    tree
                ), str(tree)

    def test_uniform_two_level_agreement(self):
        sqa = first_one_sqa()
        for text in [
            "0(0(1, 1), 1(0, 1))",
            "1(1(1), 0(0))",
            "0(1(0, 0, 1), 0(1, 1), 1(0))",
        ]:
            tree = Tree.parse(text)
            assert evaluate_query_via_behavior(sqa, tree) == sqa.evaluate(tree)

    def test_stay_assigned_states_are_assumed(self):
        """Children carry both their down state and their stay state."""
        sqa = first_one_sqa()
        tree = flat_family_tree(1, 3)  # 0 1 1
        assumed, _halting = assumed_sets(sqa.automaton, tree)
        # Child 1 (the first 1): down state s, then stay, then crowned one.
        assert assumed[(1,)] >= {"s", "stay", "one"}
        assert assumed[(2,)] >= {"s", "stay", "up"}
