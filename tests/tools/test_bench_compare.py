"""`tools/bench_compare.py`: regression detection on BENCH_*.json pairs.

The tool is dependency-free and loaded straight from ``tools/`` so the
no-numpy CI job exercises it too.  Fixtures are synthetic BENCH files in
the exact shape ``benchmarks/conftest.py`` writes.
"""

import importlib.util
import json
from pathlib import Path

import pytest

_SPEC = importlib.util.spec_from_file_location(
    "bench_compare",
    Path(__file__).resolve().parents[2] / "tools" / "bench_compare.py",
)
bench_compare = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(bench_compare)


def _bench_file(path, module, rows):
    payload = {
        "module": module,
        "summary": {"benchmarks": len(rows)},
        "benchmarks": [
            {"name": name, "stats": {"median": median, "mean": median}}
            for name, median in rows.items()
        ],
    }
    path.write_text(json.dumps(payload))
    return path


class TestCompare:
    def test_regression_detected(self, tmp_path):
        old = _bench_file(
            tmp_path / "BENCH_old.json", "string_qa", {"fast[100]": 1e-3}
        )
        new = _bench_file(
            tmp_path / "BENCH_new.json", "string_qa", {"fast[100]": 2e-3}
        )
        report = bench_compare.compare(
            bench_compare.collect(old), bench_compare.collect(new)
        )
        assert len(report["regressions"]) == 1
        entry = report["regressions"][0]
        assert entry["name"] == "fast[100]"
        assert entry["ratio"] == pytest.approx(2.0)
        assert not report["improvements"]

    def test_improvement_and_noise_band(self, tmp_path):
        old = _bench_file(
            tmp_path / "BENCH_old.json",
            "string_qa",
            {"improved": 4e-3, "steady": 1e-3},
        )
        new = _bench_file(
            tmp_path / "BENCH_new.json",
            "string_qa",
            {"improved": 1e-3, "steady": 1.1e-3},
        )
        report = bench_compare.compare(
            bench_compare.collect(old), bench_compare.collect(new)
        )
        assert not report["regressions"]
        assert [e["name"] for e in report["improvements"]] == ["improved"]
        assert [e["name"] for e in report["unchanged"]] == ["steady"]

    def test_threshold_widens_noise_band(self, tmp_path):
        old = _bench_file(tmp_path / "BENCH_a.json", "m", {"row": 1e-3})
        new = _bench_file(tmp_path / "BENCH_b.json", "m", {"row": 1.4e-3})
        loose = bench_compare.compare(
            bench_compare.collect(old),
            bench_compare.collect(new),
            threshold=1.5,
        )
        assert not loose["regressions"]
        strict = bench_compare.compare(
            bench_compare.collect(old),
            bench_compare.collect(new),
            threshold=1.25,
        )
        assert len(strict["regressions"]) == 1

    def test_added_and_removed_rows_reported(self, tmp_path):
        old = _bench_file(
            tmp_path / "BENCH_old.json", "m", {"kept": 1e-3, "dropped": 1e-3}
        )
        new = _bench_file(
            tmp_path / "BENCH_new.json", "m", {"kept": 1e-3, "fresh": 1e-3}
        )
        report = bench_compare.compare(
            bench_compare.collect(old), bench_compare.collect(new)
        )
        assert report["removed"] == [{"module": "m", "name": "dropped"}]
        assert report["added"] == [{"module": "m", "name": "fresh"}]
        assert not report["regressions"]

    def test_directory_mode_pairs_by_module(self, tmp_path):
        before, after = tmp_path / "before", tmp_path / "after"
        before.mkdir()
        after.mkdir()
        _bench_file(before / "BENCH_string_qa.json", "string_qa", {"x": 1e-3})
        _bench_file(before / "BENCH_nbta.json", "nbta", {"y": 1e-3})
        _bench_file(after / "BENCH_string_qa.json", "string_qa", {"x": 5e-3})
        # nbta missing on the new side: its row shows up as removed.
        report = bench_compare.compare(
            bench_compare.collect(before), bench_compare.collect(after)
        )
        assert [e["module"] for e in report["regressions"]] == ["string_qa"]
        assert report["removed"] == [{"module": "nbta", "name": "y"}]


class TestCli:
    def test_exit_codes(self, tmp_path, capsys):
        old = _bench_file(tmp_path / "BENCH_a.json", "m", {"row": 1e-3})
        same = _bench_file(tmp_path / "BENCH_b.json", "m", {"row": 1e-3})
        slow = _bench_file(tmp_path / "BENCH_c.json", "m", {"row": 9e-3})
        assert bench_compare.main([str(old), str(same)]) == 0
        assert bench_compare.main([str(old), str(slow)]) == 1
        out = capsys.readouterr().out
        assert "regressions: 1" in out
        assert "9.00x slower" in out

    def test_json_output(self, tmp_path, capsys):
        old = _bench_file(tmp_path / "BENCH_a.json", "m", {"row": 1e-3})
        new = _bench_file(tmp_path / "BENCH_b.json", "m", {"row": 4e-3})
        assert bench_compare.main([str(old), str(new), "--json"]) == 1
        report = json.loads(capsys.readouterr().out)
        assert report["regressions"][0]["ratio"] == pytest.approx(4.0)

    def test_bad_inputs(self, tmp_path, capsys):
        old = _bench_file(tmp_path / "BENCH_a.json", "m", {"row": 1e-3})
        missing = tmp_path / "nope.json"
        assert bench_compare.main([str(old), str(missing)]) == 2
        assert bench_compare.main(
            [str(old), str(old), "--threshold", "0.5"]
        ) == 2
        empty = tmp_path / "empty"
        empty.mkdir()
        assert bench_compare.main([str(old), str(empty)]) == 2
        capsys.readouterr()
