"""Shared hypothesis strategies and helpers for the test suite."""

from __future__ import annotations

import random

from hypothesis import strategies as st

from repro.strings.dfa import DFA
from repro.trees.tree import Tree


# ----------------------------------------------------------------------
# Hypothesis strategies
# ----------------------------------------------------------------------


@st.composite
def total_dfas(draw, alphabet=("a", "b"), max_states=4):
    """A random total DFA over the alphabet."""
    n = draw(st.integers(min_value=1, max_value=max_states))
    states = list(range(n))
    transitions = {
        (state, symbol): draw(st.sampled_from(states))
        for state in states
        for symbol in alphabet
    }
    accepting = draw(st.sets(st.sampled_from(states)))
    initial = draw(st.sampled_from(states))
    return DFA.build(states, alphabet, transitions, initial, accepting)


@st.composite
def words(draw, alphabet=("a", "b"), max_length=8):
    """A random word over the alphabet."""
    return draw(
        st.lists(st.sampled_from(alphabet), max_size=max_length)
    )


@st.composite
def trees(draw, labels=("a", "b"), max_size=7, max_arity=3):
    """A random tree with at most ``max_size`` nodes."""
    size = draw(st.integers(min_value=1, max_value=max_size))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    from repro.trees.generators import random_tree

    return random_tree(size, list(labels), max_arity=max_arity, seed_or_rng=seed)


@st.composite
def full_binary_trees(draw, labels=("a", "b"), max_height=2):
    """A random full binary tree (arities 0/2 only)."""
    def build(height: int) -> Tree:
        label = draw(st.sampled_from(labels))
        if height == 0:
            return Tree(label)
        return Tree(label, [build(height - 1), build(height - 1)])

    height = draw(st.integers(min_value=0, max_value=max_height))
    return build(height)


@st.composite
def wide_trees(draw, labels=("a", "b"), max_depth=2, max_arity=3):
    """A random tree whose inner nodes have ≥ 2 children."""
    def build(depth: int) -> Tree:
        label = draw(st.sampled_from(labels))
        if depth == 0 or draw(st.booleans()):
            return Tree(label)
        arity = draw(st.integers(min_value=2, max_value=max_arity))
        return Tree(label, [build(depth - 1) for _ in range(arity)])

    return build(max_depth)


# ----------------------------------------------------------------------
# Plain helpers
# ----------------------------------------------------------------------


def all_words(alphabet, max_length):
    """Every word over the alphabet up to the length (deterministic)."""
    import itertools

    for n in range(max_length + 1):
        yield from (list(w) for w in itertools.product(alphabet, repeat=n))


def random_total_dfa(rng: random.Random, alphabet=("a", "b"), max_states=4) -> DFA:
    n = rng.randint(1, max_states)
    states = list(range(n))
    transitions = {
        (state, symbol): rng.randrange(n)
        for state in states
        for symbol in alphabet
    }
    accepting = {state for state in states if rng.random() < 0.5}
    return DFA.build(states, alphabet, transitions, rng.randrange(n), accepting)
