"""The command-line interface."""

import json

import pytest

from repro.cli import main
from repro.trees.dtd import BIBLIOGRAPHY_DTD
from repro.trees.xml import BIBLIOGRAPHY_EXAMPLE


@pytest.fixture()
def document_file(tmp_path):
    path = tmp_path / "bib.xml"
    path.write_text(BIBLIOGRAPHY_EXAMPLE)
    return str(path)


@pytest.fixture()
def dtd_file(tmp_path):
    path = tmp_path / "bib.dtd"
    path.write_text(BIBLIOGRAPHY_DTD)
    return str(path)


class TestCLI:
    def test_query(self, document_file, capsys):
        assert main(["query", document_file, "//author"]) == 0
        out = capsys.readouterr().out
        assert out.count("<author>") == 4

    def test_query_with_validation(self, document_file, dtd_file, capsys):
        assert main(["query", document_file, "//year", "--dtd", dtd_file]) == 0
        out = capsys.readouterr().out
        assert "1995" in out and "1970" in out

    def test_query_validation_failure(self, tmp_path, dtd_file, capsys):
        bad = tmp_path / "bad.xml"
        bad.write_text("<bibliography><book><title>x</title></book></bibliography>")
        assert main(["query", str(bad), "//title", "--dtd", dtd_file]) == 2

    def test_validate_ok(self, document_file, dtd_file, capsys):
        assert main(["validate", document_file, dtd_file]) == 0
        assert "valid" in capsys.readouterr().out

    def test_validate_reports_violations(self, tmp_path, dtd_file, capsys):
        bad = tmp_path / "bad.xml"
        bad.write_text("<bibliography><book><title>x</title></book></bibliography>")
        assert main(["validate", str(bad), dtd_file]) == 1
        assert "book" in capsys.readouterr().out

    def test_tree(self, document_file, capsys):
        assert main(["tree", document_file]) == 0
        out = capsys.readouterr().out
        assert "bibliography" in out.splitlines()[0]


class TestDecideCLI:
    def test_emptiness_with_witness(self, dtd_file, capsys):
        assert main(["decide", "emptiness", dtd_file, "//author"]) == 1
        out = capsys.readouterr().out
        assert "witness:" in out and "marked node:" in out

    def test_emptiness_empty(self, dtd_file, capsys):
        # No DTD-valid document has an author with a book child.
        assert main(["decide", "emptiness", dtd_file, "/author/book"]) == 0
        assert "empty" in capsys.readouterr().out

    def test_containment_holds(self, dtd_file, capsys):
        assert (
            main(["decide", "containment", dtd_file, "/book/author", "//author"])
            == 0
        )
        assert "contained" in capsys.readouterr().out

    def test_containment_counterexample(self, dtd_file, capsys):
        assert (
            main(["decide", "containment", dtd_file, "//author", "/book/author"])
            == 1
        )
        out = capsys.readouterr().out
        assert "witness:" in out and "marked node:" in out

    def test_budget_exceeded(self, dtd_file, capsys):
        assert (
            main(["decide", "emptiness", dtd_file, "//author", "--budget", "1"])
            == 2
        )
        assert "budget exceeded" in capsys.readouterr().err

    def test_wrong_pattern_count(self, dtd_file, capsys):
        assert main(["decide", "containment", dtd_file, "//author"]) == 2


class TestStatsFlag:
    def _stderr_report(self, err: str) -> dict:
        return json.loads(err[err.index("{"):])

    def test_query_stats_report_on_stderr(self, document_file, capsys):
        assert main(["query", document_file, "//author", "--stats"]) == 0
        captured = capsys.readouterr()
        assert captured.out.count("<author>") == 4  # stdout untouched
        report = self._stderr_report(captured.err)
        assert report["counters"]["pipeline.selects"] == 1
        assert report["counters"]["trees.evaluations"] == 1
        assert "cli.query" in report["spans"]
        assert "pipeline.cached_pattern" in report["caches"]

    def test_query_without_stats_is_silent(self, document_file, capsys):
        assert main(["query", document_file, "//author"]) == 0
        assert "{" not in capsys.readouterr().err

    def test_decide_stats_report_on_stderr(self, dtd_file, capsys):
        assert main(["decide", "emptiness", dtd_file, "//author", "--stats"]) == 1
        captured = capsys.readouterr()
        report = self._stderr_report(captured.err)
        assert report["counters"]["antichain.searches"] > 0
        assert "cli.decide" in report["spans"]

    def test_decide_stats_survives_budget_trip(self, dtd_file, capsys):
        code = main(
            ["decide", "emptiness", dtd_file, "//author", "--budget", "1", "--stats"]
        )
        assert code == 2
        captured = capsys.readouterr()
        assert "budget exceeded" in captured.err
        report = self._stderr_report(captured.err[captured.err.index("{"):])
        assert "counters" in report


class TestJobsFlag:
    """``--jobs`` on query/profile: sharded runs and the serial bypass."""

    @pytest.fixture()
    def corpus_files(self, tmp_path):
        from repro.trees.xml import make_bibliography

        paths = []
        for index in range(3):
            path = tmp_path / f"bib{index}.xml"
            path.write_text(make_bibliography(2, 3 + index))
            paths.append(str(path))
        return paths

    def test_query_multi_document_serial(self, corpus_files, capsys):
        assert main(["query", *corpus_files, "//author"]) == 0
        out = capsys.readouterr().out
        for path in corpus_files:
            assert f"== {path}" in out

    def test_query_jobs_matches_serial_output(self, corpus_files, capsys):
        assert main(["query", *corpus_files, "//author"]) == 0
        serial = capsys.readouterr()
        assert main(["query", *corpus_files, "//author", "--jobs", "2"]) == 0
        parallel = capsys.readouterr()
        assert parallel.out == serial.out
        assert "match(es)" in parallel.err

    def test_query_jobs_1_bypasses_the_pool(self, document_file, capsys):
        assert main(
            ["query", document_file, "//author", "--jobs", "1", "--stats"]
        ) == 0
        captured = capsys.readouterr()
        report = json.loads(captured.err[captured.err.index("{"):])
        assert not any(name.startswith("parallel.") for name in report["counters"])
        # The serial single-document path is the historical one.
        assert report["counters"]["pipeline.selects"] == 1

    def test_query_jobs_emits_parallel_counters(self, corpus_files, capsys):
        assert main(
            ["query", *corpus_files, "//author", "--jobs", "2", "--stats"]
        ) == 0
        captured = capsys.readouterr()
        report = json.loads(captured.err[captured.err.index("{"):])
        assert report["counters"]["parallel.chunks"] >= 1
        assert report["counters"]["parallel.items"] == len(corpus_files)
        assert report["counters"]["parallel.workers"] >= 1
        assert report["gauges"]["parallel.worker_items_max"] >= 1

    def test_profile_jobs_1_serial_fast_path(self, capsys):
        assert main(["profile", "--jobs", "1"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["workload"] == {"kind": "builtin", "jobs": 1}
        assert "profile.parallel" in report["spans"]
        assert not any(name.startswith("parallel.") for name in report["counters"])
        assert report["counters"]["pipeline.corpus_selects"] == 1

    def test_profile_jobs_2_shards(self, capsys):
        assert main(["profile", "--jobs", "2"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["workload"]["jobs"] == 2
        assert report["counters"]["parallel.chunks"] >= 2
        assert report["counters"]["parallel.items"] == 6

    def test_query_rejects_nonpositive_jobs(self, document_file, capsys):
        assert main(["query", document_file, "//author", "--jobs", "0"]) == 2
        assert "--jobs must be >= 1" in capsys.readouterr().err
        assert main(["profile", "--jobs", "-2"]) == 2

    def test_profile_document_with_jobs(self, document_file, capsys):
        code = main(
            ["profile", "--document", document_file, "--pattern", "//author",
             "--repeat", "4", "--jobs", "2"]
        )
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        assert report["workload"]["jobs"] == 2
        assert report["counters"]["parallel.items"] == 4


class TestProfileCLI:
    #: The counters ISSUE acceptance requires nonzero from the built-in suite.
    REQUIRED = (
        "table.intern_hits",
        "table.sweeps",
        "closure.scans",
        "closure.prunes",
        "pipeline.pattern_cache_hits",
    )

    def test_builtin_suite(self, capsys):
        assert main(["profile"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["workload"] == {"kind": "builtin"}
        for name in self.REQUIRED:
            assert report["counters"][name] > 0, name
        assert set(report["spans"]) >= {
            "profile.total",
            "profile.strings",
            "profile.pipeline",
            "profile.decision",
        }

    def test_document_workload(self, document_file, capsys):
        code = main(
            ["profile", "--document", document_file, "--pattern", "//author",
             "--repeat", "4"]
        )
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        assert report["workload"]["kind"] == "document"
        assert report["counters"]["pipeline.selects"] == 4
        assert report["counters"]["pipeline.pattern_cache_hits"] >= 3

    def test_document_requires_pattern(self, document_file, capsys):
        assert main(["profile", "--document", document_file]) == 2
