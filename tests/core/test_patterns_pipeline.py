"""Pattern language and the XML pipeline (the paper's motivating workflow)."""

import pytest

from repro.core.patterns import PatternError, compile_pattern
from repro.core.pipeline import Document, ValidationError, run_pattern
from repro.trees.dtd import BIBLIOGRAPHY_DTD, parse_dtd
from repro.trees.tree import Tree
from repro.trees.xml import BIBLIOGRAPHY_EXAMPLE


class TestPatterns:
    def test_child_step(self):
        query = compile_pattern("/b", ["a", "b"])
        assert query.evaluate(Tree.parse("a(b, a, b)")) == frozenset({(0,), (2,)})

    def test_nested_child_steps(self):
        query = compile_pattern("/b/a", ["a", "b"])
        tree = Tree.parse("a(b(a, b), a(a))")
        assert query.evaluate(tree) == frozenset({(0, 0)})

    def test_descendant_step(self):
        query = compile_pattern("//a", ["a", "b"])
        tree = Tree.parse("b(a(a), b(b(a)))")
        assert query.evaluate(tree) == frozenset({(0,), (0, 0), (1, 0, 0)})

    def test_wildcard(self):
        query = compile_pattern("/*", ["a", "b"])
        tree = Tree.parse("a(b, a)")
        assert query.evaluate(tree) == frozenset({(0,), (1,)})

    def test_leaf_filter(self):
        query = compile_pattern("//b[leaf]", ["a", "b"])
        tree = Tree.parse("a(b, a(b), b(a))")
        assert query.evaluate(tree) == frozenset({(0,), (1, 0)})

    def test_first_last_filters(self):
        tree = Tree.parse("a(b, b, b)")
        first = compile_pattern("/b[first]", ["a", "b"])
        last = compile_pattern("/b[last]", ["a", "b"])
        assert first.evaluate(tree) == frozenset({(0,)})
        assert last.evaluate(tree) == frozenset({(2,)})

    def test_has_filter(self):
        # ``//`` selects proper descendants of the root, so the root
        # itself (which also has a b-child here) is not matched.
        query = compile_pattern("//a[has(b)]", ["a", "b"])
        tree = Tree.parse("a(a(b), a(a))")
        assert query.evaluate(tree) == frozenset({(0,)})

    def test_agrees_with_naive_engine(self):
        from repro.trees.generators import enumerate_trees

        for pattern in ["/a", "//b", "//a[leaf]", "/a/b"]:
            fast = compile_pattern(pattern, ["a", "b"], engine="automaton")
            slow = compile_pattern(pattern, ["a", "b"], engine="naive")
            for tree in enumerate_trees(["a", "b"], 4)[:60]:
                assert fast.evaluate(tree) == slow.evaluate(tree), (
                    pattern, str(tree)
                )

    def test_errors(self):
        with pytest.raises(PatternError):
            compile_pattern("book", ["book"])
        with pytest.raises(PatternError):
            compile_pattern("//x[unknown]", ["x"])


class TestPipeline:
    def test_bibliography_authors(self):
        document = Document.from_text(
            BIBLIOGRAPHY_EXAMPLE, parse_dtd(BIBLIOGRAPHY_DTD)
        )
        authors = document.select("//author")
        assert authors == [(0, 0), (0, 1), (0, 2), (1, 0)]

    def test_matches_return_subtrees(self):
        document = Document.from_text(BIBLIOGRAPHY_EXAMPLE)
        titles = document.matches("//title")
        assert len(titles) == 2
        assert all(t.label == "title" for t in titles)

    def test_element_access(self):
        document = Document.from_text(BIBLIOGRAPHY_EXAMPLE)
        book = document.element_at((0,))
        assert book.tag == "book"
        assert document.element_at((0, 3)).texts() == ["Foundations of Databases"]

    def test_validation_failure(self):
        with pytest.raises(ValidationError):
            Document.from_text(
                "<bibliography><book><title>X</title></book></bibliography>",
                parse_dtd(BIBLIOGRAPHY_DTD),
            )

    def test_run_pattern_one_shot(self):
        years = run_pattern(BIBLIOGRAPHY_EXAMPLE, "//year")
        assert len(years) == 2


class TestEditTextCoalescing:
    """Edits never leave adjacent text chunks a parser can't produce.

    Deleting (or replacing with text) an element between two text chunks
    used to leave ``["x", "y"]`` adjacent in content — the edited tree
    had two ``#text`` leaves, but serializing and reparsing merged them
    into one, so the edited document and its round-trip disagreed on
    paths.  ``with_deleted``/``with_replaced`` now coalesce.
    """

    def _roundtrips(self, document):
        from repro.trees.xml import serialize

        reparsed = Document.from_text(serialize(document.element))
        assert str(reparsed.tree) == str(document.tree)
        assert reparsed.select("//#text") == document.select("//#text")

    def test_delete_between_text_chunks(self):
        from repro import obs

        document = Document.from_text("<a>x<b/>y</a>")
        stats = obs.Stats()
        with obs.collecting(stats):
            edited = document.with_deleted((1,))
        assert edited.element.content == ["xy"]
        assert edited.tree.size == 2  # a + one merged #text leaf
        assert stats.counters["pipeline.text_merges"] == 1
        self._roundtrips(edited)

    def test_replace_with_text_between_text_chunks(self):
        document = Document.from_text("<a>x<b/>y</a>")
        edited = document.with_replaced((1,), "-mid-")
        assert edited.element.content == ["x-mid-y"]
        self._roundtrips(edited)

    def test_replace_with_element_keeps_chunks_apart(self):
        document = Document.from_text("<a>x<b/>y</a>")
        edited = document.with_replaced((1,), document.element_at((1,)))
        assert edited.element.content[0] == "x"
        assert edited.element.content[2] == "y"
        self._roundtrips(edited)

    def test_delete_with_one_sided_text(self):
        document = Document.from_text("<a>x<b/><c/></a>")
        edited = document.with_deleted((1,))
        assert edited.element.content[0] == "x"
        assert len(edited.element.content) == 2
        self._roundtrips(edited)

    def test_select_agrees_after_edit(self):
        document = Document.from_text("<a>x<b/>y<b/>z</a>")
        edited = document.with_deleted((3,))
        from repro.trees.xml import serialize

        fresh = Document.from_text(serialize(edited.element))
        for query in ("//#text", "//b", "//*"):
            assert edited.select(query) == fresh.select(query), query
