"""The public Query API: engines agree with each other and the oracle."""

import pytest

from repro.core.query import (
    CompiledQuery,
    MSOQuery,
    RankedAutomatonQuery,
    UnrankedAutomatonQuery,
    select,
    subtrees,
)
from repro.logic.semantics import tree_query
from repro.logic.syntax import And, Edge, Exists, Label, Var
from repro.ranked.examples import circuit_value_query
from repro.trees.generators import (
    enumerate_trees,
    random_binary_circuit,
    random_unranked_circuit,
)
from repro.trees.tree import Tree
from repro.unranked.examples import circuit_query_automaton

x, y = Var("x"), Var("y")


class TestMSOQuery:
    def test_engines_agree(self):
        phi = Exists(y, And(Edge(x, y), Label(y, "a")))
        automaton_engine = MSOQuery(phi, x, ("a", "b"), engine="automaton")
        naive_engine = MSOQuery(phi, x, ("a", "b"), engine="naive")
        for tree in enumerate_trees(["a", "b"], 4):
            assert automaton_engine.evaluate(tree) == naive_engine.evaluate(tree)

    def test_compiled_is_cached(self):
        query = MSOQuery(Label(x, "a"), x, ("a", "b"))
        assert query.compiled() is query.compiled()

    def test_callable(self):
        query = MSOQuery(Label(x, "a"), x, ("a", "b"))
        assert query(Tree.parse("a(b)")) == frozenset({()})

    def test_compiled_query_wrapper(self):
        base = MSOQuery(Label(x, "a"), x, ("a", "b"))
        wrapped = CompiledQuery(base.compiled())
        tree = Tree.parse("b(a, a)")
        assert wrapped.evaluate(tree) == base.evaluate(tree)


class TestAutomatonQueries:
    def test_ranked_engines_agree(self):
        query_sim = RankedAutomatonQuery(circuit_value_query(), engine="simulate")
        query_beh = RankedAutomatonQuery(circuit_value_query(), engine="behavior")
        for seed in range(8):
            tree = random_binary_circuit(3, seed)
            assert query_sim.evaluate(tree) == query_beh.evaluate(tree)

    def test_unranked_engines_agree(self):
        query_sim = UnrankedAutomatonQuery(circuit_query_automaton(), engine="simulate")
        query_beh = UnrankedAutomatonQuery(circuit_query_automaton(), engine="behavior")
        for seed in range(8):
            tree = random_unranked_circuit(2, 4, seed)
            assert query_sim.evaluate(tree) == query_beh.evaluate(tree)


class TestHelpers:
    def test_select_is_document_ordered(self):
        query = MSOQuery(Label(x, "a"), x, ("a", "b"))
        tree = Tree.parse("a(b, a(a), a)")
        paths = select(query, tree)
        assert paths == sorted(paths)
        assert paths == [(), (1,), (1, 0), (2,)]

    def test_subtrees(self):
        query = MSOQuery(Label(x, "a"), x, ("a", "b"))
        tree = Tree.parse("b(a(b), b)")
        assert [str(t) for t in subtrees(query, tree)] == ["a(b)"]
